// Google-benchmark microbenchmarks of the simulator's own hot paths:
// event queue throughput, flash scheduling, index model, Bloom filter,
// Zipf sampling, hashing, histogram recording. These bound how large an
// experiment the simulator can run per wall-clock second.
//
// Besides the normal google-benchmark CLI, the binary has a smoke mode:
//
//   bench_sim_micro --kvsim_json=BENCH_sim.json [--kvsim_events=N]
//
// which times the steady-state event-queue cycle directly (no benchmark
// library involved) and writes {events_per_sec, ns_per_event,
// allocs_per_event} as JSON. scripts/bench.sh compares that file against
// the committed baseline and fails CI on a large regression.
#include <benchmark/benchmark.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <new>
#include <string>

#include "common/hash.h"
#include "common/histogram.h"
#include "common/rng.h"
#include "flash/controller.h"
#include "harness/runner.h"
#include "harness/stacks.h"
#include "kvftl/bloom.h"
#include "kvftl/index_model.h"
#include "sim/event_queue.h"

// --- counting global allocator ---------------------------------------------
// Counts every heap allocation in the process so the event-queue benchmarks
// can report allocations per event (the fast path claims zero in steady
// state). Relaxed atomics: the count only needs to be exact across the
// single-threaded measured regions.
namespace {
std::atomic<unsigned long long> g_alloc_count{0};
}  // namespace

// GCC flags free() inside a replaced operator delete as mismatched with
// the replaced operator new; malloc/free is exactly the pairing here.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif
void* operator new(std::size_t n) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n ? n : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t n) { return ::operator new(n); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif

namespace {

using namespace kvsim;

void BM_EventQueueScheduleRun(benchmark::State& state) {
  // The queue is constructed once and reused: the benchmark measures the
  // steady-state schedule->run cycle, not slab/heap warm-up. Times are
  // scheduled relative to now() because the reused queue's clock advances.
  sim::EventQueue eq;
  u64 sink = 0;
  const auto allocs0 = g_alloc_count.load(std::memory_order_relaxed);
  for (auto _ : state) {
    const TimeNs base = eq.now();
    for (int i = 0; i < 1000; ++i)
      eq.schedule_at(base + (TimeNs)(1000 - i), [&sink] { ++sink; });
    eq.run();
    benchmark::DoNotOptimize(sink);
  }
  const auto allocs = g_alloc_count.load(std::memory_order_relaxed) - allocs0;
  state.SetItemsProcessed(state.iterations() * 1000);
  state.counters["allocs_per_event"] = benchmark::Counter(
      (double)allocs / (double)(state.iterations() * 1000));
}
BENCHMARK(BM_EventQueueScheduleRun);

void BM_FlashControllerReads(benchmark::State& state) {
  flash::FlashGeometry g;
  flash::FlashTiming t;
  // The stride multiply must happen in PageId width and before the modulo;
  // `(PageId)i * 977 % total` binds as `((PageId)i * 977) % total` only
  // because casts outrank both — keep it parenthesized so the page scatter
  // survives refactoring.
  static_assert(sizeof(flash::PageId) == 8,
                "stride arithmetic below assumes 64-bit page ids");
  for (auto _ : state) {
    sim::EventQueue eq;
    flash::FlashController ctl(eq, g, t);
    for (u32 i = 0; i < 256; ++i)
      ctl.read_page(((flash::PageId)i * 977) % g.total_pages(), 4096, [] {});
    eq.run();
  }
  state.SetItemsProcessed(state.iterations() * 256);
}
BENCHMARK(BM_FlashControllerReads);

void BM_IndexModelInsert(benchmark::State& state) {
  kvftl::IndexModelConfig cfg;
  cfg.dram_bytes = (u64)state.range(0);
  kvftl::IndexModel idx(cfg);
  Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(idx.on_insert(rng.next()));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_IndexModelInsert)->Arg(64 << 10)->Arg(16 << 20);

void BM_BloomInsertQuery(benchmark::State& state) {
  kvftl::CountingBloom bloom(100000);
  Rng rng(2);
  for (auto _ : state) {
    const u64 k = rng.next();
    bloom.insert(k);
    benchmark::DoNotOptimize(bloom.may_contain(k));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BloomInsertQuery);

void BM_ZipfSample(benchmark::State& state) {
  ZipfGenerator z(10'000'000, 0.99);
  Rng rng(3);
  for (auto _ : state) benchmark::DoNotOptimize(z.next(rng));
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ZipfSample);

void BM_Hash64(benchmark::State& state) {
  const std::string key(16, 'k');
  for (auto _ : state) benchmark::DoNotOptimize(hash64(key));
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Hash64);

void BM_HistogramRecord(benchmark::State& state) {
  LatencyHistogram h;
  Rng rng(4);
  for (auto _ : state) h.record(rng.below(10'000'000));
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HistogramRecord);

// Full run_workload with the time-sliced telemetry collector on (arg 1)
// vs off (arg 0): comparing the two bounds the observability overhead.
void BM_RunWorkloadTelemetry(benchmark::State& state) {
  for (auto _ : state) {
    harness::KvssdBedConfig cfg;
    cfg.dev = ssd::SsdConfig::small_device();
    harness::KvssdBed bed(cfg);
    wl::WorkloadSpec spec;
    spec.num_ops = 4000;
    spec.key_space = 2000;
    spec.key_bytes = 16;
    spec.value_bytes = 1024;
    spec.mix = {0.5, 0.0, 0.5, 0};
    spec.queue_depth = 16;
    harness::RunOptions opts;
    opts.drain_after = true;
    opts.telemetry = state.range(0) != 0;
    opts.telemetry_interval = kMs;
    const auto r = harness::run_workload(bed, spec, opts);
    benchmark::DoNotOptimize(r.ops);
  }
  state.SetItemsProcessed(state.iterations() * 4000);
}
BENCHMARK(BM_RunWorkloadTelemetry)->Arg(0)->Arg(1);

// --- smoke mode -------------------------------------------------------------

/// One timed steady-state run of the schedule->run cycle over `events`
/// events (after `warmup` untimed events to grow the slab pool and heap).
struct SmokeResult {
  double events_per_sec;
  double ns_per_event;
  double allocs_per_event;
};

SmokeResult smoke_event_queue(u64 events, u64 warmup) {
  sim::EventQueue eq;
  u64 sink = 0;
  constexpr u64 kBatch = 1000;
  auto cycle = [&eq, &sink](u64 batches) {
    for (u64 b = 0; b < batches; ++b) {
      const TimeNs base = eq.now();
      for (u64 i = 0; i < kBatch; ++i)
        eq.schedule_at(base + (TimeNs)(kBatch - i), [&sink] { ++sink; });
      eq.run();
    }
  };
  cycle(warmup / kBatch + 1);
  const u64 batches = events / kBatch;
  const auto allocs0 = g_alloc_count.load(std::memory_order_relaxed);
  const auto t0 = std::chrono::steady_clock::now();
  cycle(batches);
  const auto t1 = std::chrono::steady_clock::now();
  const auto allocs = g_alloc_count.load(std::memory_order_relaxed) - allocs0;
  const double wall_ns =
      (double)std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
          .count();
  const double n = (double)(batches * kBatch);
  if (sink == 0) std::abort();  // keep the work observable
  return SmokeResult{n / (wall_ns * 1e-9), wall_ns / n, (double)allocs / n};
}

int smoke_main(const std::string& json_path, u64 events) {
  // Best of 3: the smoke gate runs inside CI on shared machines, so take
  // the least-noisy (fastest) run as the measurement.
  SmokeResult best{0, 0, 0};
  for (int rep = 0; rep < 3; ++rep) {
    const SmokeResult r = smoke_event_queue(events, /*warmup=*/100'000);
    if (r.events_per_sec > best.events_per_sec) best = r;
  }
  std::FILE* f = std::fopen(json_path.c_str(), "w");
  if (!f) {
    std::fprintf(stderr, "bench_sim_micro: cannot write %s\n",
                 json_path.c_str());
    return 1;
  }
  std::fprintf(f,
               "{\n"
               "  \"benchmark\": \"event_queue_schedule_run\",\n"
               "  \"events\": %llu,\n"
               "  \"events_per_sec\": %.0f,\n"
               "  \"ns_per_event\": %.3f,\n"
               "  \"allocs_per_event\": %.6f\n"
               "}\n",
               (unsigned long long)events, best.events_per_sec,
               best.ns_per_event, best.allocs_per_event);
  std::fclose(f);
  std::printf("event_queue_schedule_run: %.2fM events/s, %.1f ns/event, "
              "%.4f allocs/event -> %s\n",
              best.events_per_sec / 1e6, best.ns_per_event,
              best.allocs_per_event, json_path.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path;
  u64 events = 4'000'000;
  int out = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--kvsim_json=", 13) == 0) {
      json_path = argv[i] + 13;
    } else if (std::strncmp(argv[i], "--kvsim_events=", 15) == 0) {
      events = std::strtoull(argv[i] + 15, nullptr, 10);
    } else {
      argv[out++] = argv[i];  // leave the rest for google-benchmark
    }
  }
  if (!json_path.empty()) return smoke_main(json_path, events);
  argc = out;
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
