// Google-benchmark microbenchmarks of the simulator's own hot paths:
// event queue throughput, flash scheduling, index model, Bloom filter,
// Zipf sampling, hashing, histogram recording. These bound how large an
// experiment the simulator can run per wall-clock second.
#include <benchmark/benchmark.h>

#include "common/hash.h"
#include "common/histogram.h"
#include "common/rng.h"
#include "flash/controller.h"
#include "harness/runner.h"
#include "harness/stacks.h"
#include "kvftl/bloom.h"
#include "kvftl/index_model.h"
#include "sim/event_queue.h"

namespace {

using namespace kvsim;

void BM_EventQueueScheduleRun(benchmark::State& state) {
  for (auto _ : state) {
    sim::EventQueue eq;
    u64 sink = 0;
    for (int i = 0; i < 1000; ++i)
      eq.schedule_at((TimeNs)(1000 - i), [&sink] { ++sink; });
    eq.run();
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_EventQueueScheduleRun);

void BM_FlashControllerReads(benchmark::State& state) {
  flash::FlashGeometry g;
  flash::FlashTiming t;
  for (auto _ : state) {
    sim::EventQueue eq;
    flash::FlashController ctl(eq, g, t);
    for (u32 i = 0; i < 256; ++i)
      ctl.read_page((flash::PageId)i * 977 % g.total_pages(), 4096, [] {});
    eq.run();
  }
  state.SetItemsProcessed(state.iterations() * 256);
}
BENCHMARK(BM_FlashControllerReads);

void BM_IndexModelInsert(benchmark::State& state) {
  kvftl::IndexModelConfig cfg;
  cfg.dram_bytes = (u64)state.range(0);
  kvftl::IndexModel idx(cfg);
  Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(idx.on_insert(rng.next()));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_IndexModelInsert)->Arg(64 << 10)->Arg(16 << 20);

void BM_BloomInsertQuery(benchmark::State& state) {
  kvftl::CountingBloom bloom(100000);
  Rng rng(2);
  for (auto _ : state) {
    const u64 k = rng.next();
    bloom.insert(k);
    benchmark::DoNotOptimize(bloom.may_contain(k));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BloomInsertQuery);

void BM_ZipfSample(benchmark::State& state) {
  ZipfGenerator z(10'000'000, 0.99);
  Rng rng(3);
  for (auto _ : state) benchmark::DoNotOptimize(z.next(rng));
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ZipfSample);

void BM_Hash64(benchmark::State& state) {
  const std::string key(16, 'k');
  for (auto _ : state) benchmark::DoNotOptimize(hash64(key));
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Hash64);

void BM_HistogramRecord(benchmark::State& state) {
  LatencyHistogram h;
  Rng rng(4);
  for (auto _ : state) h.record(rng.below(10'000'000));
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HistogramRecord);

// Full run_workload with the time-sliced telemetry collector on (arg 1)
// vs off (arg 0): comparing the two bounds the observability overhead.
void BM_RunWorkloadTelemetry(benchmark::State& state) {
  for (auto _ : state) {
    harness::KvssdBedConfig cfg;
    cfg.dev = ssd::SsdConfig::small_device();
    harness::KvssdBed bed(cfg);
    wl::WorkloadSpec spec;
    spec.num_ops = 4000;
    spec.key_space = 2000;
    spec.key_bytes = 16;
    spec.value_bytes = 1024;
    spec.mix = {0.5, 0.0, 0.5, 0};
    spec.queue_depth = 16;
    harness::RunOptions opts;
    opts.telemetry = state.range(0) != 0;
    opts.telemetry_interval = kMs;
    const auto r = harness::run_workload(bed, spec, true, nullptr, opts);
    benchmark::DoNotOptimize(r.ops);
  }
  state.SetItemsProcessed(state.iterations() * 4000);
}
BENCHMARK(BM_RunWorkloadTelemetry)->Arg(0)->Arg(1);

}  // namespace

BENCHMARK_MAIN();
