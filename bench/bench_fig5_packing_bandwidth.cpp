// Fig. 5 reproduction: write bandwidth vs value size. Block-SSD (a) rises
// smoothly; KV-SSD (b) shows zig-zag dips right past each 24 KiB data-area
// multiple (25 KiB, 49 KiB, ...) where a blob starts spilling into one
// more flash page and pays split/offset-pointer overheads.
#include <algorithm>

#include "bench_util.h"
#include "common/ascii_plot.h"

namespace kvbench {
namespace {

constexpr u64 kOps = 12'000;
constexpr u32 kQd = 32;
constexpr u32 kKeyBytes = 16;

double kv_write_mibs(u32 value_bytes) {
  harness::KvssdBed bed(kvssd_cfg(device_gib(4), kOps * 2));
  wl::WorkloadSpec spec;
  spec.num_ops = kOps;
  spec.key_space = kOps;
  spec.key_bytes = kKeyBytes;
  spec.value_bytes = value_bytes;
  spec.pattern = wl::Pattern::kUniform;
  spec.queue_depth = kQd;
  spec.mix = wl::OpMix::insert_only();
  const auto r = run_workload(bed, spec, {.drain_after = true});
  report().add_run("kvssd/" + std::to_string(value_bytes) + "B", r);
  report().add_device(bed);
  return r.bandwidth_bytes_per_sec() / (double)MiB;
}

double block_write_mibs(u32 io_bytes) {
  harness::BlockBedConfig cfg;
  cfg.dev = device_gib(4);
  harness::BlockDirectBed bed(cfg);
  harness::BlockRunSpec spec;
  spec.num_ops = kOps;
  spec.io_bytes = io_bytes;
  spec.span_bytes = (u64)kOps * io_bytes;
  spec.queue_depth = kQd;
  spec.op = harness::BlockOp::kWrite;
  const auto r = run_block(bed.eq(), bed.device(), spec, true);
  report().add_run("block/" + std::to_string(io_bytes) + "B", r);
  report().add_device("block-SSD", &bed.ftl().stats(), &bed.flash());
  return r.bandwidth_bytes_per_sec() / (double)MiB;
}

}  // namespace
}  // namespace kvbench

int main() {
  using namespace kvbench;
  print_header("Fig 5", "write bandwidth vs value size (packing policy)");
  report_init("fig5_packing_bandwidth");
  std::printf("%llu random writes per point, QD %u\n",
              (unsigned long long)kOps, kQd);

  Table t({"value KiB", "block-SSD MiB/s", "KV-SSD MiB/s", "KV dip marker"});
  std::vector<std::pair<double, double>> blk_pts, kv_pts;
  double prev_kv = 0;
  for (u32 kib = 16; kib <= 56; kib += 1) {
    // Block I/O sizes must be 4 KiB aligned for an apples comparison of
    // the device substrate; KV takes the exact value size.
    const u32 v = kib * 1024;
    const double blk = block_write_mibs((v + 4095) / 4096 * 4096);
    const double kv = kv_write_mibs(v);
    const bool dip = prev_kv > 0 && kv < prev_kv * 0.9;
    t.add_row({std::to_string(kib), Table::num(blk, 1), Table::num(kv, 1),
               dip ? "v DIP" : ""});
    blk_pts.emplace_back(kib, blk);
    kv_pts.emplace_back(kib, kv);
    prev_kv = kv;
    std::fflush(stdout);
  }
  std::printf("%s", t.render().c_str());
  save_csv("fig5_bandwidth", t);

  AsciiChart chart(72, 16);
  chart.set_y_floor(0);
  chart.set_axis_labels("value size (KiB)", "write bandwidth (MiB/s)");
  chart.add_series("block-SSD", blk_pts, '#');
  chart.add_series("KV-SSD", kv_pts, '*');
  std::printf("\n%s", chart.render().c_str());
  std::printf(
      "\nExpected shape (paper): block-SSD smooth; KV-SSD drops sharply at "
      "25 KiB and 49 KiB (one more page per blob), recovering between.\n\n");
  auto kv_at = [&](u32 kib) {
    return kv_pts[(size_t)(kib - 16)].second;
  };
  auto blk_minmax = [&] {
    double mn = 1e18, mx = 0;
    for (auto [x, y] : blk_pts) {
      mn = std::min(mn, y);
      mx = std::max(mx, y);
    }
    return std::pair{mn, mx};
  }();
  check_shape(kv_at(25) < kv_at(24) * 0.75, "KV-SSD dip at 25 KiB");
  check_shape(kv_at(49) < kv_at(48) * 0.75, "KV-SSD dip at 49 KiB");
  check_shape(kv_at(48) > kv_at(26), "KV-SSD recovers between dips");
  check_shape(blk_minmax.second < blk_minmax.first * 1.5,
              "block-SSD bandwidth smooth across sizes");
  save_report();
  return shape_exit();
}
