// Validation of the analytical KV-SSD model (src/model) against the
// discrete-event simulator: per-configuration predicted vs simulated
// throughput and latency. The model's asymptotic bounds should track the
// simulator within ~2x across regimes (value size, queue depth, index
// occupancy), which is what makes it usable for workload design — the
// paper's stated goal for such a model.
#include "bench_util.h"
#include "model/kvssd_model.h"

namespace kvbench {
namespace {

constexpr u64 kOps = 25'000;
constexpr u32 kKeyBytes = 16;

struct Obs {
  double sim_kops, model_kops;
  double sim_us, model_us;
};

Obs observe(u32 value_bytes, u32 qd, bool read, u64 resident_kvps,
            u64 index_dram) {
  harness::KvssdBedConfig cfg = kvssd_cfg(device_gib(4), resident_kvps + kOps);
  cfg.ftl.index.dram_bytes = index_dram;
  harness::KvssdBed bed(cfg);
  (void)harness::fill_stack(bed, std::max<u64>(resident_kvps, kOps),
                            kKeyBytes, value_bytes, 128);

  wl::WorkloadSpec spec;
  spec.num_ops = kOps;
  spec.key_space = std::max<u64>(resident_kvps, kOps);
  spec.key_bytes = kKeyBytes;
  spec.value_bytes = value_bytes;
  spec.pattern = wl::Pattern::kUniform;
  spec.queue_depth = qd;
  spec.mix = read ? wl::OpMix::read_only() : wl::OpMix::update_only();
  const harness::RunResult r = harness::run_workload(bed, spec, {.drain_after = true});
  report().add_run(std::string(read ? "read" : "update") + "/" +
                       std::to_string(value_bytes) + "B/qd" +
                       std::to_string(qd),
                   r);

  model::ModelInput in;
  in.dev = cfg.dev;
  in.ftl = cfg.ftl;
  in.nvme = cfg.nvme;
  in.key_bytes = kKeyBytes;
  in.value_bytes = value_bytes;
  in.queue_depth = qd;
  in.is_read = read;
  in.kvp_count = spec.key_space;
  in.fill_fraction =
      (double)bed.ftl().live_slots() / (double)bed.ftl().max_kvp_capacity();
  in.update_fraction = read ? 0.0 : 1.0;
  const model::ModelOutput m = model::predict(in);

  const auto& h = read ? r.read : r.update;
  return Obs{r.throughput_ops_per_sec() / 1000.0,
             m.throughput_ops_per_sec / 1000.0, h.mean() / 1000.0,
             m.mean_latency_ns / 1000.0};
}

}  // namespace
}  // namespace kvbench

int main() {
  using namespace kvbench;
  print_header("Model", "analytical model vs simulator");
  report_init("model_validation");

  Table t({"config", "sim kops", "model kops", "x", "sim us", "model us",
           "x"});
  struct Case {
    const char* name;
    u32 value;
    u32 qd;
    bool read;
    u64 resident;
    u64 dram;
  };
  const Case cases[] = {
      {"write 4K QD1", 4096, 1, false, 0, 16 * MiB},
      {"write 4K QD64", 4096, 64, false, 0, 16 * MiB},
      {"write 512B QD64", 512, 64, false, 0, 16 * MiB},
      {"write 64K QD8", 64 * 1024, 8, false, 0, 16 * MiB},
      {"read 4K QD1", 4096, 1, true, 0, 16 * MiB},
      {"read 4K QD64", 4096, 64, true, 0, 16 * MiB},
      {"read 512B QD8 spilled-index", 512, 8, true, 700'000, 8 * MiB},
      {"write 512B QD8 spilled-index", 512, 8, false, 700'000, 8 * MiB},
  };
  bool all_in_band = true;
  for (const Case& c : cases) {
    const Obs o = observe(c.value, c.qd, c.read, c.resident, c.dram);
    const double lr = o.model_us / o.sim_us;
    all_in_band = all_in_band && lr > 1.0 / 3.0 && lr < 3.0;
    t.add_row({c.name, Table::num(o.sim_kops, 1), Table::num(o.model_kops, 1),
               ratio(o.model_kops, o.sim_kops), Table::num(o.sim_us, 1),
               Table::num(o.model_us, 1), ratio(o.model_us, o.sim_us)});
    std::fflush(stdout);
  }
  std::printf("%s", t.render().c_str());
  save_csv("model_validation", t);
  std::printf(
      "\nReading: 'x' columns are model/simulator ratios; the asymptotic-"
      "bound model should stay within roughly 0.5x-2x across regimes and "
      "correctly rank configurations.\n\n");
  check_shape(all_in_band,
              "model latency within 3x of the simulator on every case");
  save_report();
  return shape_exit();
}
