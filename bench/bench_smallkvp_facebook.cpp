// §IV "host-side software stack" discussion bench: Facebook-scale tiny
// KVPs (the paper cites Cao et al. [14]: average KVP sizes of 57-154 B)
// against the KV-SSD's fixed 64 B NVMe commands and 1 KiB slot padding.
// Quantifies (a) command-bytes overhead per KVP with and without the
// compound-command proposal, (b) throughput, and (c) the space-
// amplification bill — the combination behind the paper's conclusion
// that KV-SSD should be avoided for "extremely low data size" writes.
#include "bench_util.h"

namespace kvbench {
namespace {

constexpr u64 kOps = 60'000;
constexpr u32 kKeyBytes = 24;  // Facebook keys commonly exceed 16 B

struct Result {
  double kops;
  double cmd_bytes_per_app_byte;
  double space_amp;
};

Result run_fb(bool compound) {
  harness::KvssdBedConfig cfg = kvssd_cfg(device_gib(2), kOps * 2);
  cfg.nvme.compound_commands = compound;
  harness::KvssdBed bed(cfg);
  wl::WorkloadSpec spec;
  spec.num_ops = kOps;
  spec.key_space = kOps;
  spec.key_bytes = kKeyBytes;
  spec.value_bytes = 512;  // tail cap
  spec.value_dist = wl::ValueDist::kFacebook;
  spec.pattern = wl::Pattern::kUniform;
  spec.mix = wl::OpMix::insert_only();
  spec.distinct_inserts = true;
  spec.queue_depth = 32;
  const harness::RunResult r = harness::run_workload(bed, spec, {.drain_after = true});
  report().add_run(compound ? "facebook/compound" : "facebook/two_command",
                   r);
  report().add_device(bed);

  const u64 app = bed.ftl().app_bytes_live();
  const u32 ncmds = compound ? 1 : 2;  // 24 B keys need two commands
  return Result{r.throughput_ops_per_sec() / 1000.0,
                (double)(kOps * ncmds * 64) / (double)app,
                (double)bed.device_bytes_used() / (double)app};
}

}  // namespace
}  // namespace kvbench

int main() {
  using namespace kvbench;
  print_header("SmallKVP",
               "Facebook-sized KVPs (57-154 B avg) on the KV command set");
  report_init("smallkvp_facebook");
  std::printf("%llu inserts, %u B keys, heavy-tailed ~110 B values, QD 32\n",
              (unsigned long long)kOps, kKeyBytes);

  const Result base = run_fb(false);
  const Result comp = run_fb(true);

  Table t({"command set", "kops/s", "NVMe cmd bytes / app byte",
           "space amp"});
  t.add_row({"64 B commands, 2 per op (device default)",
             Table::num(base.kops, 1),
             Table::num(base.cmd_bytes_per_app_byte, 2),
             Table::num(base.space_amp, 2)});
  t.add_row({"compound commands [10]", Table::num(comp.kops, 1),
             Table::num(comp.cmd_bytes_per_app_byte, 2),
             Table::num(comp.space_amp, 2)});
  std::printf("%s", t.render().c_str());
  save_csv("smallkvp_facebook", t);
  std::printf(
      "\nReading (paper Sec. IV): for ~100 B KVPs the command stream "
      "itself approaches the size of the data ('a waste of critical "
      "system resources'), compound commands halve it and lift "
      "throughput, and the 1 KiB slot padding still costs ~%0.0fx space — "
      "which is why the paper's conclusion steers tiny-value write-heavy "
      "workloads away from KV-SSD.\n",
      base.space_amp);
  std::printf("\n");
  check_shape(comp.kops > base.kops * 1.3,
              "compound commands lift small-KVP throughput");
  check_shape(base.cmd_bytes_per_app_byte > 0.4,
              "command stream comparable to the data itself");
  check_shape(base.space_amp > 4.0,
              "1 KiB padding dominates space for ~100 B KVPs");
  save_report();
  return shape_exit();
}
