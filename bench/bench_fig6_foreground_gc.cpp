// Fig. 6 reproduction: bandwidth timeline during random updates after an
// 80% fill (16 B keys, 4 KiB values). (a) RocksDB on block-SSD shows no
// device-GC dip (whole-SST TRIM keeps victims empty); (b) KV-SSD under
// uniform-random updates and (c) under sliding-window pseudo-random
// updates collapses into foreground GC.
#include <memory>

#include "bench_util.h"
#include "common/ascii_plot.h"

namespace kvbench {
namespace {

constexpr u32 kKeyBytes = 16;
constexpr u32 kValueBytes = 4 * KiB;
constexpr u32 kQd = 64;

struct Timeline {
  harness::RunResult result;
  u64 gc_runs = 0, fg_gc = 0;
  u64 migrated = 0;
  double waf = 0;
};

void print_timeline(const char* label, const Timeline& tl) {
  std::printf("\n%s: %llu updates in %s, mean %s MiB/s, min-window %s "
              "MiB/s\n  device GC: %llu runs, %llu host-write waits, "
              "%s migrated, WAF %.2f\n",
              label, (unsigned long long)tl.result.ops,
              format_time_ns((double)tl.result.elapsed).c_str(),
              mibs(tl.result.bandwidth_bytes_per_sec()).c_str(),
              mibs(tl.result.bw.min_bytes_per_sec()).c_str(),
              (unsigned long long)tl.gc_runs, (unsigned long long)tl.fg_gc,
              format_bytes((double)tl.migrated).c_str(), tl.waf);
  // Timeline chart: mean bandwidth over ~64 equal spans of the run.
  const auto& w = tl.result.bw;
  const size_t stride = std::max<size_t>(1, w.num_windows() / 64);
  std::vector<std::pair<double, double>> pts;
  for (size_t i = 0; i + 1 < w.num_windows(); i += stride) {
    double sum = 0;
    size_t n = 0;
    for (size_t j = i; j < std::min(i + stride, w.num_windows()); ++j, ++n)
      sum += w.bytes_per_sec(j);
    pts.emplace_back((double)(i * w.window()) / (double)kSec,
                     sum / (double)std::max<size_t>(1, n) / (double)MiB);
  }
  AsciiChart chart(72, 12);
  chart.set_y_floor(0);
  chart.set_axis_labels("time (s)", "update bandwidth (MiB/s)");
  chart.add_series(label, pts, '*');
  std::printf("%s", chart.render().c_str());
}

Timeline run_kvssd(wl::Pattern pattern) {
  const ssd::SsdConfig dev = device_gib(2);
  harness::KvssdBed bed(kvssd_cfg(dev, 2'000'000));
  // 80% of the data-slot capacity (4 KiB values -> 4 slots each).
  const u64 keys = bed.ftl().max_kvp_capacity() * 8 / 10 / 4;
  std::printf("  [KV-SSD fill: %llu keys]\n", (unsigned long long)keys);
  (void)harness::fill_stack(bed, keys, kKeyBytes, kValueBytes, 128);
  const u64 gc0 = bed.ftl().stats().gc_runs;
  const u64 fg0 = bed.ftl().stats().gc_foreground_runs;
  const u64 mig0 = bed.ftl().stats().gc_migrated_bytes;

  wl::WorkloadSpec spec;
  spec.num_ops = keys;  // rewrite the same volume, as in the paper
  spec.key_space = keys;
  spec.key_bytes = kKeyBytes;
  spec.value_bytes = kValueBytes;
  spec.pattern = pattern;
  spec.window = keys / 50;
  spec.mix = wl::OpMix::update_only();
  spec.queue_depth = kQd;
  Timeline tl;
  tl.result = run_workload(bed, spec, {.drain_after = true});
  tl.gc_runs = bed.ftl().stats().gc_runs - gc0;
  tl.fg_gc = bed.ftl().stats().gc_foreground_runs - fg0;
  tl.migrated = bed.ftl().stats().gc_migrated_bytes - mig0;
  tl.waf = bed.ftl().stats().waf();
  report().add_run(pattern == wl::Pattern::kUniform ? "kvssd_uniform"
                                                    : "kvssd_sliding_window",
                   tl.result);
  report().add_device(bed);
  return tl;
}

Timeline run_rocksdb() {
  const ssd::SsdConfig dev = device_gib(2);
  harness::LsmBedConfig lcfg = lsm_cfg(dev);
  // Level sizing proportionate to the 2 GiB device (as RocksDB's defaults
  // are to a 3.84 TB one) so compaction depth matches the paper's setup.
  lcfg.lsm.memtable_bytes = 32 * MiB;
  lcfg.lsm.l1_target_bytes = 128 * MiB;
  lcfg.lsm.sst_target_bytes = 32 * MiB;
  harness::LsmBed bed(lcfg);
  const u64 keys =
      (u64)((double)dev.geometry.raw_capacity_bytes() * 0.8 * 0.8) /
      (kKeyBytes + kValueBytes);
  std::printf("  [RocksDB fill: %llu keys]\n", (unsigned long long)keys);
  (void)harness::fill_stack(bed, keys, kKeyBytes, kValueBytes, 128);
  const u64 gc0 = bed.ftl().stats().gc_runs;
  const u64 fg0 = bed.ftl().stats().gc_foreground_runs;
  const u64 mig0 = bed.ftl().stats().gc_migrated_bytes;

  wl::WorkloadSpec spec;
  spec.num_ops = keys;
  spec.key_space = keys;
  spec.key_bytes = kKeyBytes;
  spec.value_bytes = kValueBytes;
  spec.pattern = wl::Pattern::kUniform;
  spec.mix = wl::OpMix::update_only();
  spec.queue_depth = kQd;
  Timeline tl;
  tl.result = run_workload(bed, spec, {.drain_after = true});
  tl.gc_runs = bed.ftl().stats().gc_runs - gc0;
  tl.fg_gc = bed.ftl().stats().gc_foreground_runs - fg0;
  tl.migrated = bed.ftl().stats().gc_migrated_bytes - mig0;
  tl.waf = bed.ftl().stats().waf();
  report().add_run("rocksdb_uniform", tl.result);
  report().add_device(bed);
  return tl;
}

}  // namespace
}  // namespace kvbench

int main() {
  using namespace kvbench;
  print_header("Fig 6",
               "foreground GC under random updates after 80% fill");
  report_init("fig6_foreground_gc");

  const Timeline rdb = run_rocksdb();
  print_timeline("(a) RocksDB on block-SSD, uniform updates", rdb);

  const Timeline kv_uni = run_kvssd(wl::Pattern::kUniform);
  print_timeline("(b) KV-SSD, uniform updates", kv_uni);

  const Timeline kv_win = run_kvssd(wl::Pattern::kSlidingWindow);
  print_timeline("(c) KV-SSD, sliding-window updates", kv_win);

  std::printf(
      "\nExpected shape (paper): (a) steady bandwidth, device GC idle "
      "(LSM TRIMs whole SSTs); (b)/(c) bandwidth collapses under "
      "foreground GC (min-window << mean), WAF >> 1.\n\n");
  check_shape(rdb.waf < kv_uni.waf * 0.75,
              "device WAF: whole-SST TRIM keeps block GC far cheaper");
  check_shape(rdb.waf < 1.5,
              "RocksDB-side device GC near-free (WAF ~1)");
  check_shape(kv_uni.fg_gc > 1000, "KV-SSD host writes wait on GC (b)");
  check_shape(kv_win.fg_gc > 1000, "KV-SSD host writes wait on GC (c)");
  check_shape(kv_uni.waf > 1.5, "KV-SSD GC write amplification (b)");
  check_shape(kv_uni.result.bw.min_bytes_per_sec() <
                  kv_uni.result.bandwidth_bytes_per_sec() * 0.3,
              "KV-SSD bandwidth collapses intermittently (b)");
  check_shape(kv_win.result.bw.min_bytes_per_sec() <
                  kv_win.result.bandwidth_bytes_per_sec() * 0.3,
              "KV-SSD bandwidth collapses intermittently (c)");
  save_report();
  return shape_exit();
}
