// Multi-tenant NVMe front-end driver: WRR fairness at command-processor
// saturation and noisy-neighbor isolation over the multi-queue NvmeLink
// (docs/API.md "Multi-queue & tenancy", EXPERIMENTS.md recipe).
//
// Scenario 1 — fairness: 16 tenants on 16 submission queues with WRR
// weights {1,2,4,8} repeated, each tenant's op count proportional to its
// weight, update-only at queue depth 16. device_fetch_ns is raised so
// the shared command processor is the bottleneck; with fetch bandwidth
// handed out proportionally to weight, every tenant finishes at the same
// simulated time. Metric: max relative deviation of per-tenant finish
// times (fairness_max_dev), gated at 5%.
//
// Scenario 2 — noisy neighbor, on each of the three beds: a victim doing
// point reads at queue depth 1 against an aggressor doing point reads at
// queue depth 128. Shared configuration = one submission queue (the
// victim's command waits behind the aggressor's entire backlog, so its
// p99 grows with the aggressor's depth); isolated configuration = two
// queues with victim weight 16 vs aggressor weight 1 (the WRR fetches
// the victim's command after at most a burst of aggressor fetches, so
// victim p99 stays near its solo baseline).
//
// Flags:
//   --smoke           small op counts for CI (same scenarios)
//   --kvsim_json=PATH write {fairness_max_dev, victim_p99_solo_ns,
//                     victim_p99_isolated_ns, victim_p99_shared_ns,
//                     sim_ops_per_sec, wall_ms} for the bench.sh gate
#include <chrono>
#include <cstring>
#include <fstream>
#include <memory>

#include "bench_util.h"

namespace kvbench {
namespace {

constexpr TimeNs kSlowFetchNs = 20000;  // make the command processor the bottleneck

u64 g_total_ops = 0;  // across every scenario, for the perf metric

// --- scenario 1: WRR fairness ------------------------------------------------

nvme::NvmeConfig fairness_nvme(u32 tenants) {
  nvme::NvmeConfig n;
  n.device_fetch_ns = kSlowFetchNs;
  n.num_queues = tenants;
  n.queue_weights.resize(tenants);
  for (u32 i = 0; i < tenants; ++i)
    n.queue_weights[i] = 1u << (i % 4);  // 1,2,4,8 repeated
  return n;
}

double run_fairness(u64 base_ops) {
  const u32 kTenants = 16;
  harness::KvssdBedConfig cfg = kvssd_cfg(device_gib(2), 64'000);
  cfg.nvme = fairness_nvme(kTenants);
  harness::KvssdBed bed(cfg);

  wl::TenantMix mix;
  for (u32 i = 0; i < kTenants; ++i) {
    wl::TenantSpec t;
    t.name = "w" + std::to_string(1u << (i % 4)) + "/q" + std::to_string(i);
    t.weight = 1u << (i % 4);
    t.queue = i;
    t.nsid = (u8)(i + 1);
    t.spec.num_ops = base_ops * t.weight;  // work proportional to share
    t.spec.key_space = 2000;
    t.spec.key_bytes = 16;  // one command per op
    t.spec.value_bytes = 512;
    t.spec.mix = wl::OpMix::update_only();
    t.spec.queue_depth = 16;
    t.spec.seed = 1000 + i;
    mix.tenants.push_back(std::move(t));
  }
  const harness::MixResult r =
      harness::run_mix(bed, mix, {.drain_after = true});
  g_total_ops += r.combined.ops;
  report().add_mix("fairness/16t", r);

  Table t({"tenant", "weight", "ops", "finish ms", "p99 us", "q stalls"});
  double min_f = 1e300, max_f = 0;
  for (u32 i = 0; i < (u32)r.tenants.size(); ++i) {
    const harness::TenantResult& tr = r.tenants[i];
    const double f = (double)tr.last_completion_ns;
    min_f = std::min(min_f, f);
    max_f = std::max(max_f, f);
    t.add_row({tr.name, Table::num(tr.weight, 0),
               Table::num((double)tr.result.ops, 0), Table::num(f / 1e6, 2),
               us(tr.result.all.percentile(0.99)),
               Table::num((double)r.queues[tr.queue].stats.arbitration_stalls,
                          0)});
  }
  std::printf("%s", t.render().c_str());
  save_csv("multitenant_fairness", t);

  // All op counts are weight-proportional, so proportional fetch service
  // means equal finish times; the spread is the unfairness.
  const double mid = (min_f + max_f) / 2.0;
  const double dev = mid > 0 ? (max_f - min_f) / (2.0 * mid) : 1.0;
  std::printf("fairness: finish spread %.2f%% over %llu WRR rounds\n",
              100.0 * dev, (unsigned long long)r.arbitration_rounds);
  check_shape(dev <= 0.05,
              "16-tenant WRR throughput proportional to weights within 5%");
  check_shape(r.arbitration_rounds > 0, "arbiter replenished credit rounds");
  return dev;
}

// --- scenario 2: noisy neighbor ---------------------------------------------

nvme::NvmeConfig noisy_nvme(bool isolated) {
  nvme::NvmeConfig n;
  n.device_fetch_ns = kSlowFetchNs;
  if (isolated) {
    n.num_queues = 2;
    n.queue_weights = {16, 1};  // victim : aggressor
  }
  return n;
}

std::unique_ptr<harness::KvStack> make_bed(const std::string& kind,
                                           const nvme::NvmeConfig& n,
                                           u64 keys) {
  if (kind == "kvssd") {
    harness::KvssdBedConfig c = kvssd_cfg(device_gib(2), keys * 2);
    c.nvme = n;
    return std::make_unique<harness::KvssdBed>(c);
  }
  if (kind == "lsm") {
    harness::LsmBedConfig c = lsm_cfg(device_gib(2));
    c.nvme = n;
    // The default 10 MiB block cache would swallow the whole working set
    // and hide the NVMe queues entirely; keep reads hitting the device.
    c.lsm.block_cache_bytes = 64 * KiB;
    return std::make_unique<harness::LsmBed>(c);
  }
  harness::HashKvBedConfig c = hashkv_cfg(device_gib(2));
  c.nvme = n;
  return std::make_unique<harness::HashKvBed>(c);
}

wl::TenantSpec victim_spec(u64 ops, u64 keys) {
  wl::TenantSpec t;
  t.name = "victim";
  t.spec.num_ops = ops;
  t.spec.key_space = keys;
  t.spec.key_bytes = 16;
  t.spec.value_bytes = 512;
  t.spec.mix = wl::OpMix::read_only();
  t.spec.queue_depth = 1;
  t.spec.seed = 7001;
  return t;
}

wl::TenantSpec aggressor_spec(u64 ops, u64 keys) {
  wl::TenantSpec t;
  t.name = "aggressor";
  t.spec.num_ops = ops;
  t.spec.key_space = keys;
  t.spec.key_bytes = 16;
  t.spec.value_bytes = 512;
  t.spec.mix = wl::OpMix::read_only();
  t.spec.queue_depth = 128;
  t.spec.seed = 7002;
  return t;
}

struct NoisyOutcome {
  double solo_p99 = 0, iso_p99 = 0, shared_p99 = 0;
};

NoisyOutcome run_noisy(const std::string& kind, u64 victim_ops) {
  const u64 kKeys = 4000;
  const u64 aggr_ops = victim_ops * 40;  // outlasts the victim at qd 128
  NoisyOutcome out;

  // Solo baseline: victim alone, default single queue.
  {
    auto bed = make_bed(kind, noisy_nvme(false), kKeys);
    (void)harness::fill_stack(*bed, kKeys, 16, 512, 32);
    wl::TenantMix mix;
    mix.tenants.push_back(victim_spec(victim_ops, kKeys));
    const harness::MixResult r = harness::run_mix(*bed, mix);
    g_total_ops += r.combined.ops;
    out.solo_p99 = r.tenants[0].result.all.percentile(0.99);
  }
  // Shared single queue: both tenants funnel into SQ 0.
  {
    auto bed = make_bed(kind, noisy_nvme(false), kKeys);
    (void)harness::fill_stack(*bed, kKeys, 16, 512, 32);
    wl::TenantMix mix;
    mix.tenants.push_back(victim_spec(victim_ops, kKeys));
    mix.tenants.push_back(aggressor_spec(aggr_ops, kKeys));
    const harness::MixResult r = harness::run_mix(*bed, mix);
    g_total_ops += r.combined.ops;
    out.shared_p99 = r.tenants[0].result.all.percentile(0.99);
    report().add_mix("noisy/" + kind + "/shared", r);
  }
  // Isolated: own queues, victim weighted 16:1 over the aggressor.
  {
    auto bed = make_bed(kind, noisy_nvme(true), kKeys);
    (void)harness::fill_stack(*bed, kKeys, 16, 512, 32);
    wl::TenantMix mix;
    mix.tenants.push_back(victim_spec(victim_ops, kKeys));
    wl::TenantSpec a = aggressor_spec(aggr_ops, kKeys);
    a.queue = 1;
    a.weight = 1;
    mix.tenants.push_back(std::move(a));
    mix.tenants[0].weight = 16;
    const harness::MixResult r = harness::run_mix(*bed, mix);
    g_total_ops += r.combined.ops;
    out.iso_p99 = r.tenants[0].result.all.percentile(0.99);
    report().add_mix("noisy/" + kind + "/isolated", r);
  }
  return out;
}

}  // namespace
}  // namespace kvbench

int main(int argc, char** argv) {
  using namespace kvbench;
  bool smoke = false;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (!std::strcmp(argv[i], "--smoke")) {
      smoke = true;
    } else if (!std::strncmp(argv[i], "--kvsim_json=", 13)) {
      json_path = argv[i] + 13;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", argv[i]);
      return 2;
    }
  }

  report_init("multitenant");
  const auto t0 = std::chrono::steady_clock::now();

  print_header("Multi-tenant 1", "WRR fairness, 16 tenants at saturation");
  const double fairness_dev = run_fairness(smoke ? 60 : 250);

  print_header("Multi-tenant 2", "noisy neighbor: shared SQ vs isolated WRR");
  const u64 victim_ops = smoke ? 300 : 1000;
  Table t({"bed", "solo p99 us", "isolated p99 us", "shared p99 us",
           "shared/iso"});
  NoisyOutcome kv_out;
  for (const char* kind : {"kvssd", "lsm", "hashkv"}) {
    const NoisyOutcome o = run_noisy(kind, victim_ops);
    if (!std::strcmp(kind, "kvssd")) kv_out = o;
    t.add_row({kind, us(o.solo_p99), us(o.iso_p99), us(o.shared_p99),
               ratio(o.shared_p99, o.iso_p99)});
    // Isolation bounds the victim's queueing delay; the shared queue
    // lets the aggressor's backlog (qd 128) land in front of every
    // victim command. The near-solo bound is asserted only for the
    // KV-SSD bed: its isolation is native (namespace + queue), while the
    // block beds still share the host-side cache and filesystem with the
    // aggressor (cache pollution is a real effect queues cannot fix).
    if (!std::strcmp(kind, "kvssd"))
      check_shape(o.iso_p99 <= 8.0 * o.solo_p99,
                  "kvssd: isolated victim p99 bounded near solo");
    check_shape(o.shared_p99 >= 3.0 * o.iso_p99,
                (std::string(kind) +
                 ": shared-queue victim p99 inflated vs isolated")
                    .c_str());
  }
  std::printf("%s", t.render().c_str());
  save_csv("multitenant_noisy", t);

  const double wall_ms = std::chrono::duration<double, std::milli>(
                             std::chrono::steady_clock::now() - t0)
                             .count();
  const double sim_ops_per_sec =
      wall_ms > 0 ? (double)g_total_ops / (wall_ms / 1000.0) : 0.0;
  std::printf("\n%llu simulated ops in %.1f ms (%.0f ops/s)\n",
              (unsigned long long)g_total_ops, wall_ms, sim_ops_per_sec);

  if (!json_path.empty()) {
    std::ofstream out(json_path);
    out << "{\n"
        << "  \"benchmark\": \"multitenant\",\n"
        << "  \"fairness_max_dev\": " << fairness_dev << ",\n"
        << "  \"victim_p99_solo_ns\": " << kv_out.solo_p99 << ",\n"
        << "  \"victim_p99_isolated_ns\": " << kv_out.iso_p99 << ",\n"
        << "  \"victim_p99_shared_ns\": " << kv_out.shared_p99 << ",\n"
        << "  \"sim_ops\": " << g_total_ops << ",\n"
        << "  \"sim_ops_per_sec\": " << sim_ops_per_sec << ",\n"
        << "  \"wall_ms\": " << wall_ms << "\n"
        << "}\n";
    std::printf("[json] %s\n", json_path.c_str());
  }

  save_report();
  return shape_exit();
}
