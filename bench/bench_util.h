// Shared configuration and reporting helpers for the per-figure experiment
// binaries. Every bench scales the paper's 3.84 TB PM983 experiments down
// to simulator-friendly device sizes while preserving the occupancy ratios
// and regime boundaries that drive each figure (see EXPERIMENTS.md).
#pragma once

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>

#include "common/table.h"
#include "harness/report.h"
#include "harness/runner.h"
#include "harness/stacks.h"

namespace kvbench {

using namespace kvsim;  // NOLINT: bench binaries read better unqualified

// --- scaled devices ---------------------------------------------------------

inline ssd::SsdConfig device_gib(u32 gib) {
  ssd::SsdConfig d = ssd::SsdConfig::standard_device();  // 16 GiB
  // Scale by trimming blocks per plane (keeps parallelism identical).
  d.geometry.blocks_per_plane = 64 * gib / 16;
  if (d.geometry.blocks_per_plane == 0) d.geometry.blocks_per_plane = 4;
  return d;
}

// --- stack configurations (the paper's three setups) ------------------------

inline harness::KvssdBedConfig kvssd_cfg(const ssd::SsdConfig& dev,
                                         u64 expected_keys) {
  harness::KvssdBedConfig c;
  c.dev = dev;
  c.ftl.expected_keys_hint = expected_keys;
  c.ftl.track_iterator_keys = false;  // memory-light mode for large fills
  c.ftl.index.dram_bytes = 16 * MiB;
  return c;
}

inline harness::LsmBedConfig lsm_cfg(const ssd::SsdConfig& dev) {
  harness::LsmBedConfig c;
  c.dev = dev;
  c.lsm.block_cache_bytes = 10 * MiB;  // the paper's 10 MB block cache
  return c;
}

inline harness::HashKvBedConfig hashkv_cfg(const ssd::SsdConfig& dev) {
  harness::HashKvBedConfig c;
  c.dev = dev;
  return c;
}

// --- formatting --------------------------------------------------------------

inline std::string us(double ns) { return Table::num(ns / 1000.0, 1); }
inline std::string mibs(double bytes_per_sec) {
  return Table::num(bytes_per_sec / (double)MiB, 1);
}
inline std::string ratio(double a, double b) {
  return b > 0 ? Table::num(a / b, 2) + "x" : "-";
}

inline void print_header(const char* exp_id, const char* title) {
  std::printf("\n=== %s: %s ===\n", exp_id, title);
}

/// Shape assertions: each figure bench checks the paper's qualitative
/// claims against its own measurements and exits nonzero on regression,
/// so `for b in build/bench/*; do $b; done` doubles as a reproduction
/// verifier.
inline int g_shape_failures = 0;

inline void check_shape(bool ok, const char* claim) {
  std::printf("[shape %s] %s\n", ok ? "PASS" : "FAIL", claim);
  if (!ok) ++g_shape_failures;
}

inline int shape_exit() {
  if (g_shape_failures)
    std::printf("\n%d shape check(s) FAILED\n", g_shape_failures);
  return g_shape_failures ? 1 : 0;
}

// --- JSON telemetry report ---------------------------------------------------

/// Per-binary JSON report: call report_init("fig6_foreground_gc") first in
/// main, record runs/devices next to the console output, and save_report()
/// before shape_exit(). The document carries everything the console tables
/// show plus the raw telemetry (latency histograms, stage breakdowns,
/// time-sliced counters), so figures are reproducible from results/*.json
/// alone.
inline std::unique_ptr<harness::BenchReport> g_report;

inline void report_init(const std::string& name) {
  g_report = std::make_unique<harness::BenchReport>(name);
}

inline harness::BenchReport& report() {
  if (!g_report) report_init("bench");
  return *g_report;
}

inline void save_report() {
  if (!g_report) return;
  const std::string path = g_report->save();
  if (!path.empty()) std::printf("[json] %s\n", path.c_str());
}

/// Persist a result table as results/<name>.csv (the repository's
/// equivalent of the paper's public data release).
inline void save_csv(const std::string& name, const Table& t) {
  std::error_code ec;
  std::filesystem::create_directories("results", ec);
  std::ofstream out("results/" + name + ".csv");
  if (out) {
    out << t.to_csv();
    std::printf("[csv] results/%s.csv\n", name.c_str());
  }
}

}  // namespace kvbench
