// Fig. 2 reproduction: end-to-end I/O latency of insert / update / read
// for KV-SSD vs RocksDB(ext4/block) vs Aerospike(direct/block) under
// sequential, uniform-random, and Zipfian access (16 B keys, 4 KiB
// values, async queue depth 64; the paper issues 10 M ops on 3.84 TB —
// we issue a scaled count against scaled devices).
#include <algorithm>
#include <memory>

#include "bench_util.h"

namespace kvbench {
namespace {

constexpr u64 kKeySpace = 60'000;
constexpr u64 kOps = 60'000;
constexpr u32 kKeyBytes = 16;
constexpr u32 kValueBytes = 4 * KiB;
constexpr u32 kQd = 64;

std::unique_ptr<harness::KvStack> make_stack(const std::string& which) {
  const ssd::SsdConfig dev = device_gib(16);
  if (which == "KV-SSD")
    return std::make_unique<harness::KvssdBed>(kvssd_cfg(dev, kKeySpace * 2));
  if (which == "RDB")
    return std::make_unique<harness::LsmBed>(lsm_cfg(dev));
  return std::make_unique<harness::HashKvBed>(hashkv_cfg(dev));
}

harness::RunResult run_phase(harness::KvStack& stack, wl::Pattern pattern,
                             wl::OpMix mix, u64 seed) {
  wl::WorkloadSpec spec;
  spec.num_ops = kOps;
  spec.key_space = kKeySpace;
  spec.key_bytes = kKeyBytes;
  spec.value_bytes = kValueBytes;
  spec.pattern = pattern;
  spec.mix = mix;
  spec.queue_depth = kQd;
  spec.seed = seed;
  // KVBench-style load phase: each key once, ordered by the pattern.
  spec.distinct_inserts = mix.insert >= 1.0;
  return harness::run_workload(stack, spec, {.drain_after = true});
}

}  // namespace
}  // namespace kvbench

int main() {
  using namespace kvbench;
  print_header("Fig 2", "end-to-end latency: insert/update/read x pattern");
  report_init("fig2_e2e_latency");
  std::printf("16 B keys, 4 KiB values, QD %u, %llu ops per phase\n", kQd,
              (unsigned long long)kOps);

  const wl::Pattern patterns[] = {wl::Pattern::kSequential,
                                  wl::Pattern::kUniform,
                                  wl::Pattern::kZipfian};
  Table insert_t({"stack", "Seq us(mean/p99)", "Rand us(mean/p99)",
                  "Zipf us(mean/p99)"});
  Table update_t({"stack", "Seq us(mean/p99)", "Rand us(mean/p99)",
                  "Zipf us(mean/p99)"});
  Table read_t({"stack", "Seq us(mean/p99)", "Rand us(mean/p99)",
                "Zipf us(mean/p99)"});

  auto cell = [](const LatencyHistogram& h) {
    return us(h.mean()) + " / " + us((double)h.percentile(0.99));
  };

  // mean[stack][pattern][op]: op 0=insert 1=update 2=read
  double mean[3][3][3] = {};
  int si = 0;
  for (const char* which : {"KV-SSD", "RDB", "AS"}) {
    std::vector<std::string> ins{which}, upd{which}, rd{which};
    int pi = 0;
    for (wl::Pattern p : patterns) {
      // Fresh machine per pattern, as in the paper's per-workload runs.
      auto stack = make_stack(which);
      auto insert = run_phase(*stack, p, wl::OpMix::insert_only(), 1);
      // Top up uninserted keys (unmeasured) so updates/reads always hit.
      (void)harness::fill_stack(*stack, kKeySpace, kKeyBytes, kValueBytes,
                                kQd, 99);
      auto update = run_phase(*stack, p, wl::OpMix::update_only(), 2);
      auto read = run_phase(*stack, p, wl::OpMix::read_only(), 3);
      const std::string tag =
          std::string(which) + "/" + wl::to_string(p);
      report().add_run(tag + "/insert", insert);
      report().add_run(tag + "/update", update);
      report().add_run(tag + "/read", read);
      report().add_device(*stack);
      mean[si][pi][0] = insert.insert.mean();
      mean[si][pi][1] = update.update.mean();
      mean[si][pi][2] = read.read.mean();
      ins.push_back(cell(insert.insert));
      upd.push_back(cell(update.update));
      rd.push_back(cell(read.read));
      std::fflush(stdout);
      ++pi;
    }
    insert_t.add_row(ins);
    update_t.add_row(upd);
    read_t.add_row(rd);
    ++si;
  }

  std::printf("\n(a) insert latency\n%s", insert_t.render().c_str());
  save_csv("fig2a_insert", insert_t);
  std::printf("\n(b) update latency\n%s", update_t.render().c_str());
  save_csv("fig2b_update", update_t);
  std::printf("\n(c) read latency\n%s", read_t.render().c_str());
  save_csv("fig2c_read", read_t);
  std::printf(
      "\nExpected shape (paper): KV-SSD flat across patterns; KV-SSD beats "
      "RDB for inserts+updates and AS for updates; KV-SSD loses reads to "
      "both; RDB/AS sequential beats their random.\n\n");

  enum { KV = 0, RDB = 1, AS = 2, SEQ = 0, RAND = 1, ZIPF = 2 };
  enum { INS = 0, UPD = 1, RD = 2 };
  for (int op = 0; op < 3; ++op) {
    const double mx = std::max({mean[KV][SEQ][op], mean[KV][RAND][op],
                                mean[KV][ZIPF][op]});
    const double mn = std::min({mean[KV][SEQ][op], mean[KV][RAND][op],
                                mean[KV][ZIPF][op]});
    if (op != RD)  // reads legitimately vary via die hotspots
      check_shape(mx < mn * 1.25, "KV-SSD latency flat across patterns");
  }
  check_shape(mean[KV][RAND][INS] < mean[RDB][RAND][INS],
              "KV-SSD inserts beat RocksDB (rand)");
  check_shape(mean[AS][RAND][INS] < mean[KV][RAND][INS] * 1.1,
              "Aerospike inserts at or below KV-SSD (rand)");
  check_shape(mean[KV][RAND][UPD] < mean[RDB][RAND][UPD],
              "KV-SSD updates beat RocksDB (rand)");
  check_shape(mean[KV][RAND][UPD] < mean[AS][RAND][UPD],
              "KV-SSD updates beat Aerospike (rand)");
  check_shape(mean[RDB][SEQ][INS] < mean[RDB][RAND][INS],
              "RocksDB sequential inserts beat random");
  check_shape(mean[KV][SEQ][RD] > mean[RDB][SEQ][RD],
              "KV-SSD loses sequential reads to RocksDB");
  check_shape(mean[KV][ZIPF][RD] > mean[RDB][ZIPF][RD],
              "KV-SSD loses Zipf reads to RocksDB");
  save_report();
  return shape_exit();
}
