// Crash/recovery characterization: cut the power mid-workload at several
// depths on each stack and measure what a mount costs — recovery time,
// rebuild I/O (OOB pages scanned by the FTL, WAL chunks replayed by the
// LSM bed, log blocks scanned by the hashkv bed), and the lost-write
// window (acknowledged-but-volatile state at the cut). Not a paper
// figure: the paper's testbeds all ran on PLP-less consumer hardware,
// and this is the availability/durability view of that choice — the
// KV-SSD rebuilds its whole index from flash OOB while the hosts replay
// logs, so mount cost scales with data written, not with data lost.
#include "bench_util.h"

namespace kvbench {
namespace {

struct CrashRow {
  const char* bed;
  u64 cut_events;
  harness::RunResult r;
};

wl::WorkloadSpec churn_spec() {
  wl::WorkloadSpec spec;
  spec.num_ops = 80'000;
  spec.key_space = 20'000;
  spec.key_bytes = 16;
  spec.value_bytes = 4 * KiB;
  spec.mix = {0.4, 0.3, 0.2, 0};  // rest deletes
  spec.queue_depth = 64;
  spec.seed = 17;
  return spec;
}

harness::RunResult crash_run(harness::KvStack& bed, u64 cut_events) {
  harness::RunOptions opts;
  opts.drain_after = true;
  opts.crash_after_events = cut_events;
  return run_workload(bed, churn_spec(), opts);
}

harness::RunResult run_bed(const char* bed, u64 cut) {
  if (std::string_view(bed) == "KV-SSD") {
    harness::KvssdBedConfig c = kvssd_cfg(device_gib(1), 40'000);
    c.crash_tracking = true;
    harness::KvssdBed b(c);
    harness::RunResult r = crash_run(b, cut);
    report().add_device(b);
    return r;
  }
  if (std::string_view(bed) == "RDB") {
    harness::LsmBedConfig c = lsm_cfg(device_gib(1));
    c.crash_tracking = true;
    harness::LsmBed b(c);
    harness::RunResult r = crash_run(b, cut);
    report().add_device(b);
    return r;
  }
  harness::HashKvBedConfig c = hashkv_cfg(device_gib(1));
  c.crash_tracking = true;
  harness::HashKvBed b(c);
  harness::RunResult r = crash_run(b, cut);
  report().add_device(b);
  return r;
}

}  // namespace
}  // namespace kvbench

int main() {
  using namespace kvbench;
  print_header("Crash",
               "power-loss cut + mount-time recovery cost per stack");
  report_init("crash_recovery");
  std::printf("1 GiB devices, 80k-op churn at QD 64, cut after N events; "
              "recovery runs on the simulation clock\n");

  const char* beds[] = {"KV-SSD", "RDB", "AS"};
  const u64 cuts[] = {10'000, 40'000, 160'000};
  std::vector<CrashRow> rows;
  for (const char* bed : beds)
    for (u64 cut : cuts) {
      CrashRow row{bed, cut, run_bed(bed, cut)};
      report().add_run(std::string(bed) + "/cut" + std::to_string(cut),
                       row.r);
      rows.push_back(std::move(row));
    }

  Table t({"stack", "cut (events)", "recovery", "discarded", "rebuild pages",
           "torn", "recovered", "lost", "wal replay", "wal lost",
           "log blocks"});
  for (const CrashRow& row : rows) {
    const harness::CrashOutcome& o = row.r.recovery;
    t.add_row({row.bed, std::to_string(row.cut_events),
               us((double)o.recovery_ns) + " us",
               std::to_string(o.discarded_events),
               std::to_string(o.rebuild_pages_read),
               std::to_string(o.torn_pages),
               std::to_string(o.recovered_units),
               std::to_string(o.lost_units),
               std::to_string(o.wal_records_replayed),
               std::to_string(o.wal_records_lost),
               std::to_string(o.log_blocks_scanned)});
  }
  std::printf("%s", t.render().c_str());
  save_csv("crash_recovery", t);
  save_report();

  std::printf(
      "\nReading: mount cost tracks data written before the cut (the KV-SSD "
      "scans every programmed page's OOB; the hosts replay logs), while the "
      "lost-write window tracks only the volatile state at the cut — "
      "buffers and in-flight programs — so it stays flat as the run "
      "grows.\n\n");

  auto at = [&](const char* bed, u64 cut) -> const harness::RunResult& {
    for (const CrashRow& row : rows)
      if (std::string_view(row.bed) == bed && row.cut_events == cut)
        return row.r;
    static harness::RunResult none;
    return none;
  };
  for (const char* bed : beds) {
    for (u64 cut : cuts) {
      const harness::RunResult& r = at(bed, cut);
      check_shape(r.crashed && r.recovery.recovery_ns > 0,
                  (std::string(bed) + ": cut fired and mount took time")
                      .c_str());
    }
    // Volatile state (buffers, memtable, in-flight programs) caps the
    // loss, so it grows far slower than the 16x data-written spread
    // between the shallowest and deepest cut.
    auto lost = [&](u64 cut) {
      const harness::CrashOutcome& o = at(bed, cut).recovery;
      return o.lost_units + o.wal_records_lost;
    };
    check_shape(lost(cuts[2]) < std::max<u64>(1, lost(cuts[0])) * 8,
                (std::string(bed) + ": lost-write window sublinear in run "
                                    "length (volatile state, not history)")
                    .c_str());
    check_shape(at(bed, cuts[2]).recovery.recovery_ns >=
                    at(bed, cuts[0]).recovery.recovery_ns,
                (std::string(bed) + ": deeper cut costs at least as much "
                                    "mount time")
                    .c_str());
    check_shape(at(bed, cuts[2]).recovery.rebuild_pages_read +
                        at(bed, cuts[2]).recovery.log_blocks_scanned >
                    0,
                (std::string(bed) + ": mount did real rebuild I/O").c_str());
  }
  return shape_exit();
}
