// Overload-robustness driver: offered-load sweeps under open-loop
// arrival, with and without per-tenant SLO admission control, across the
// three beds (docs/API.md "Overload & SLOs", EXPERIMENTS.md recipe).
//
// Method, per bed:
//   1. Calibrate: a closed-loop run at the serving window's depth
//      measures the bed's saturation throughput T and its solo p99.
//   2. Sweep offered load at {0.5, 1, 2, 3}x T ({0.5, 2}x in --smoke)
//      with Poisson arrivals into a bounded dispatch window, twice per
//      point: unprotected (no SLO — arrivals park in an unbounded
//      backlog) and protected (reject-new admission at the target).
//      The SLO target is set after the half-load unprotected point:
//      max(4x closed-loop solo p99, 2x half-load open-loop p99) — the
//      open-loop term absorbs beds whose service-time variance already
//      fattens the tail below saturation (a target no achievable
//      schedule could meet is not an SLO), the closed-loop term keeps
//      the target tight when the half-load tail is thin.
//   3. Report goodput, shed rate, and completed-op p99 per point.
//
// The graceful-degradation contract, gated at the 2x point on every bed:
//   - protected: p99 of completed ops stays within the SLO target and
//     the shed fraction is bounded (< 80% — the controller sheds the
//     overflow, not the stream);
//   - unprotected: p99 blows past 5x the target (the open loop makes
//     saturation visible as unbounded client-perceived latency, which
//     closed-loop measurement structurally cannot show).
//
// Flags:
//   --smoke           small op counts / two sweep points for CI
//   --kvsim_json=PATH write {slo_held, shed_rate_at_2x, protected_p99_..,
//                     sim_ops_per_sec, ...} for the bench.sh gate
#include <algorithm>
#include <chrono>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.h"

namespace kvbench {
namespace {

constexpr u64 kKeys = 4000;
constexpr u32 kWindow = 16;  // open-loop dispatch window / calibration qd

u64 g_total_ops = 0;

std::unique_ptr<harness::KvStack> make_bed(const std::string& kind) {
  if (kind == "kvssd") {
    harness::KvssdBedConfig c = kvssd_cfg(device_gib(2), kKeys * 2);
    return std::make_unique<harness::KvssdBed>(c);
  }
  if (kind == "lsm") {
    harness::LsmBedConfig c = lsm_cfg(device_gib(2));
    // Keep reads hitting the device (a cache-resident working set would
    // make "saturation" a host-CPU artifact).
    c.lsm.block_cache_bytes = 64 * KiB;
    return std::make_unique<harness::LsmBed>(c);
  }
  harness::HashKvBedConfig c = hashkv_cfg(device_gib(2));
  return std::make_unique<harness::HashKvBed>(c);
}

wl::WorkloadSpec base_spec(u64 ops) {
  wl::WorkloadSpec spec;
  spec.num_ops = ops;
  spec.key_space = kKeys;
  spec.key_bytes = 16;
  spec.value_bytes = 512;
  // Read-only against a pre-filled set: stable service times, so the
  // sweep measures queueing under offered load rather than GC pauses
  // (the open loop would otherwise turn every flush stall into a
  // backlog spike that dominates the tail even at half load).
  spec.mix = wl::OpMix::read_only();
  spec.queue_depth = kWindow;
  spec.seed = 4242;
  return spec;
}

struct Calibration {
  double capacity_ops_per_sec = 0;
  double solo_p99_ns = 0;
  TimeNs target_ns = 0;
};

Calibration calibrate(const std::string& kind, u64 ops) {
  auto bed = make_bed(kind);
  (void)harness::fill_stack(*bed, kKeys, 16, 512, 32);
  const harness::RunResult r = harness::run_workload(*bed, base_spec(ops));
  g_total_ops += r.ops;
  Calibration c;
  c.capacity_ops_per_sec = r.throughput_ops_per_sec();
  c.solo_p99_ns = r.all.percentile(0.99);
  return c;
}

struct SweepPoint {
  double multiple = 0;       // offered load as a multiple of capacity
  double offered_rate = 0;   // ops/sec
  double goodput = 0;        // SLO-goodput ops/sec (protected runs)
  double shed_rate = 0;      // shed / offered
  double p99_ns = 0;         // completed-op p99
  u64 shed = 0, offered = 0, completed = 0;
};

SweepPoint run_point(const std::string& kind, const Calibration& cal,
                     double multiple, u64 ops, bool protect) {
  auto bed = make_bed(kind);
  (void)harness::fill_stack(*bed, kKeys, 16, 512, 32);
  wl::WorkloadSpec spec = base_spec(ops);
  spec.arrival.kind = wl::ArrivalKind::kPoisson;
  spec.arrival.rate_ops_per_sec = multiple * cal.capacity_ops_per_sec;
  spec.arrival.max_inflight = kWindow;
  harness::RunOptions opts;
  if (protect) {
    harness::SloSpec slo;
    slo.p99_target_ns = cal.target_ns;
    slo.max_inflight = 3 * kWindow;  // window + a bounded backlog
    slo.window = 64;
    slo.shed_policy = harness::ShedPolicy::kRejectNew;
    opts.slos = {slo};
  }
  const harness::RunResult r = harness::run_workload(*bed, spec, opts);
  g_total_ops += r.ops;
  const std::string label = "overload/" + kind + "/" +
                            (protect ? "slo" : "raw") + "/x" +
                            Table::num(multiple, 1);
  report().add_run(label, r);

  SweepPoint p;
  p.multiple = multiple;
  p.offered_rate = spec.arrival.rate_ops_per_sec;
  p.offered = r.offered_ops;
  p.completed = r.ops;
  p.shed = r.shed_ops + r.deadline_exceeded_ops;
  p.shed_rate = r.offered_ops ? (double)p.shed / (double)r.offered_ops : 0.0;
  p.goodput = r.elapsed
                  ? (double)r.slo_goodput_ops * (double)kSec / (double)r.elapsed
                  : 0.0;
  p.p99_ns = r.all.percentile(0.99);
  return p;
}

struct BedOutcome {
  Calibration cal;
  SweepPoint prot_2x, raw_2x;
};

BedOutcome run_bed(const std::string& kind, bool smoke) {
  // The unprotected 2x point needs enough arrivals for the unbounded
  // backlog to visibly blow out the tail (~half the ops are queued by
  // the end of the run, waiting ~(ops/2)/T behind it).
  const u64 cal_ops = smoke ? 3000 : 10000;
  const u64 sweep_ops = smoke ? 6000 : 16000;
  const std::vector<double> multiples =
      smoke ? std::vector<double>{0.5, 2.0}
            : std::vector<double>{0.5, 1.0, 2.0, 3.0};

  BedOutcome out;
  out.cal = calibrate(kind, cal_ops);
  std::printf("%s: capacity %.0f ops/s, solo p99 %.0f us\n", kind.c_str(),
              out.cal.capacity_ops_per_sec, out.cal.solo_p99_ns / 1e3);

  Table t({"offered x", "config", "offered/s", "completed", "shed %",
           "goodput/s", "p99 us"});
  for (double m : multiples) {
    const SweepPoint raw = run_point(kind, out.cal, m, sweep_ops, false);
    if (m == multiples.front()) {
      // First (half-load) raw point anchors the SLO target; every
      // protected run and gate below uses it.
      out.cal.target_ns = (TimeNs)std::max(4.0 * out.cal.solo_p99_ns,
                                           2.0 * raw.p99_ns);
      std::printf("%s: SLO target %.0f us\n", kind.c_str(),
                  (double)out.cal.target_ns / 1e3);
    }
    const SweepPoint prot = run_point(kind, out.cal, m, sweep_ops, true);
    for (const SweepPoint* p : {&raw, &prot}) {
      t.add_row({Table::num(p->multiple, 1), p == &raw ? "raw" : "slo",
                 Table::num(p->offered_rate, 0),
                 Table::num((double)p->completed, 0),
                 Table::num(100.0 * p->shed_rate, 1),
                 p == &raw ? "-" : Table::num(p->goodput, 0), us(p->p99_ns)});
    }
    if (m == 2.0) {
      out.raw_2x = raw;
      out.prot_2x = prot;
    }
  }
  std::printf("%s", t.render().c_str());
  save_csv("overload_" + kind, t);

  // The graceful-degradation gates at the 2x-saturating point.
  const double target = (double)out.cal.target_ns;
  check_shape(out.prot_2x.p99_ns <= target,
              (kind + ": protected p99 within SLO target at 2x load").c_str());
  check_shape(out.prot_2x.shed_rate > 0.0 && out.prot_2x.shed_rate < 0.8,
              (kind + ": shed fraction bounded (excess only) at 2x").c_str());
  check_shape(out.raw_2x.p99_ns >= 5.0 * target,
              (kind + ": unprotected p99 blows past 5x target at 2x").c_str());
  check_shape(out.prot_2x.goodput > 0.0,
              (kind + ": protected run sustains SLO goodput at 2x").c_str());
  return out;
}

}  // namespace
}  // namespace kvbench

int main(int argc, char** argv) {
  using namespace kvbench;
  bool smoke = false;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (!std::strcmp(argv[i], "--smoke")) {
      smoke = true;
    } else if (!std::strncmp(argv[i], "--kvsim_json=", 13)) {
      json_path = argv[i] + 13;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", argv[i]);
      return 2;
    }
  }

  report_init("overload");
  const auto t0 = std::chrono::steady_clock::now();

  print_header("Overload", "open-loop offered-load sweep, SLO admission "
                           "control vs unprotected");
  BedOutcome kv_out;
  for (const char* kind : {"kvssd", "lsm", "hashkv"}) {
    const BedOutcome o = run_bed(kind, smoke);
    if (!std::strcmp(kind, "kvssd")) kv_out = o;
  }

  const double wall_ms = std::chrono::duration<double, std::milli>(
                             std::chrono::steady_clock::now() - t0)
                             .count();
  const double sim_ops_per_sec =
      wall_ms > 0 ? (double)g_total_ops / (wall_ms / 1000.0) : 0.0;
  std::printf("\n%llu simulated ops in %.1f ms (%.0f ops/s)\n",
              (unsigned long long)g_total_ops, wall_ms, sim_ops_per_sec);

  if (!json_path.empty()) {
    const bool slo_held =
        kv_out.prot_2x.p99_ns <= (double)kv_out.cal.target_ns;
    std::ofstream out(json_path);
    out << "{\n"
        << "  \"benchmark\": \"overload\",\n"
        << "  \"slo_held\": " << (slo_held ? 1 : 0) << ",\n"
        << "  \"slo_target_ns\": " << kv_out.cal.target_ns << ",\n"
        << "  \"protected_p99_at_2x_ns\": " << kv_out.prot_2x.p99_ns << ",\n"
        << "  \"unprotected_p99_at_2x_ns\": " << kv_out.raw_2x.p99_ns << ",\n"
        << "  \"shed_rate_at_2x\": " << kv_out.prot_2x.shed_rate << ",\n"
        << "  \"goodput_at_2x_ops_per_sec\": " << kv_out.prot_2x.goodput
        << ",\n"
        << "  \"capacity_ops_per_sec\": " << kv_out.cal.capacity_ops_per_sec
        << ",\n"
        << "  \"sim_ops\": " << g_total_ops << ",\n"
        << "  \"sim_ops_per_sec\": " << sim_ops_per_sec << ",\n"
        << "  \"wall_ms\": " << wall_ms << "\n"
        << "}\n";
    std::printf("[json] %s\n", json_path.c_str());
  }

  save_report();
  return shape_exit();
}
