// Fig. 7 reproduction: space amplification (device bytes used / application
// bytes written) versus KVP size for KV-SSD, Aerospike on raw block-SSD,
// and RocksDB; plus the KVP-count capacity bound the padding implies
// (the paper's ~3.1 B KVPs on 3.84 TB, reproduced at simulator scale).
#include <memory>

#include "bench_util.h"

namespace kvbench {
namespace {

constexpr u64 kKvps = 20'000;
constexpr u32 kKeyBytes = 16;

double measure_sa(harness::KvStack& stack, u32 value_bytes, bool is_lsm) {
  harness::RunResult r =
      harness::fill_stack(stack, kKvps, kKeyBytes, value_bytes, 64);
  if (r.errors.total())
    std::printf("  (errors: %llu)\n",
                (unsigned long long)r.errors.total());
  if (is_lsm) stack.add_app_bytes((i64)(kKvps * (kKeyBytes + value_bytes)));
  report().add_run(std::string(stack.name()) + "/fill_" +
                       std::to_string(value_bytes) + "B",
                   r);
  report().add_device(stack);
  return (double)stack.device_bytes_used() / (double)stack.app_bytes_live();
}

}  // namespace
}  // namespace kvbench

int main() {
  using namespace kvbench;
  print_header("Fig 7", "space amplification vs KVP size");
  report_init("fig7_space_amp");

  const u32 value_sizes[] = {50,   100,  200,  512, 1024,
                             2048, 3072, 4096, 8192};
  Table t({"value bytes", "KV-SSD", "Aerospike", "RocksDB"});
  double sa_kv_50 = 0, sa_as_50 = 0, sa_rdb_50 = 0, sa_kv_2k = 0;
  for (u32 v : value_sizes) {
    const ssd::SsdConfig dev = device_gib(2);
    harness::KvssdBed kv(kvssd_cfg(dev, kKvps * 2));
    harness::HashKvBed as(hashkv_cfg(dev));
    harness::LsmBed rdb(lsm_cfg(dev));
    const double s_kv = measure_sa(kv, v, false);
    const double s_as = measure_sa(as, v, false);
    const double s_rdb = measure_sa(rdb, v, true);
    if (v == 50) {
      sa_kv_50 = s_kv;
      sa_as_50 = s_as;
      sa_rdb_50 = s_rdb;
    }
    if (v == 2048) sa_kv_2k = s_kv;
    t.add_row({std::to_string(v), Table::num(s_kv, 2), Table::num(s_as, 2),
               Table::num(s_rdb, 2)});
    std::fflush(stdout);
  }
  std::printf("%s", t.render().c_str());
  save_csv("fig7_space_amp", t);

  // Capacity bound: fill a tiny KV-SSD with minimal KVPs until refusal.
  const ssd::SsdConfig tiny = [] {
    ssd::SsdConfig d = ssd::SsdConfig::small_device();
    d.geometry.blocks_per_plane = 8;  // 512 MiB raw
    return d;
  }();
  harness::KvssdBed kv(kvssd_cfg(tiny, 1'000'000));
  u64 stored = 0;
  Status last = Status::kOk;
  while (last == Status::kOk) {
    Status st = Status::kIoError;
    kv.store(wl::make_key(stored, kKeyBytes), ValueDesc{50, stored},
             [&](Status s) { st = s; });
    kv.eq().run();
    last = st;
    if (st == Status::kOk) ++stored;
  }
  const double raw = (double)tiny.geometry.raw_capacity_bytes();
  std::printf(
      "\nKVP capacity bound: stored %llu x 50 B KVPs on a %s device "
      "(%.2f KVPs per raw KiB; paper: ~3.1e9 on 3.84 TB = %.2f per KiB)\n",
      (unsigned long long)stored, format_bytes(raw).c_str(),
      (double)stored / (raw / 1024.0), 3.1e9 / (3.84e12 / 1024.0));
  std::printf(
      "Expected shape (paper): KV-SSD SA ~15-20x at 50 B, ~1 at 1-4 KiB "
      "(1 KiB padding); Aerospike < 2; RocksDB ~1.1.\n\n");
  check_shape(sa_kv_50 > 10.0 && sa_kv_50 < 25.0,
              "KV-SSD ~15-20x space amp at 50 B values");
  check_shape(sa_as_50 < 2.5, "Aerospike space amp < ~2 at 50 B");
  check_shape(sa_rdb_50 < 1.6, "RocksDB space amp ~1.1-1.3");
  check_shape(sa_kv_2k < 1.2, "KV-SSD space amp ~1 at 2 KiB");
  save_report();
  return shape_exit();
}
