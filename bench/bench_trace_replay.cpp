// Trace replay at scale: encode/decode throughput of the `.kvt` codec,
// flat-memory replay, and record->replay fidelity through a live bed
// (docs/API.md "Op sources & traces", EXPERIMENTS.md replay recipe).
//
// Scenario 1 — codec scale: synthesize a 10M-op trace (1M in smoke) to a
// .kvt file through KvtWriter, then replay it with TraceOpSource.
// Metrics: encode and replay ops/s (replay gated at >= 5M ops/s), file
// bytes per op, and the reader's chunk-buffer high-water mark measured
// at three replay lengths — flat memory means the high-water is bounded
// by the chunk size and does not grow with replay length.
//
// Scenario 2 — fidelity: record a small KV-SSD bed run while it
// executes, replay the capture through an identically built bed, and
// require the two BenchReport JSON documents to be byte-identical (the
// same invariant tests/trace_replay_test.cpp enforces per bed/seed).
//
// Scenario 3 — trace-fitted synthesis: fit the trace head
// (TraceProfile) and generate a synthetic continuation, measuring
// fit + generation throughput.
//
// Flags:
//   --smoke           1M-op trace instead of 10M for CI
//   --kvsim_json=PATH write {replay_ops_per_sec, encode_ops_per_sec,
//                     file_bytes_per_op, max_chunk_bytes,
//                     fidelity_identical, wall_ms} for the bench.sh gate
#include <chrono>
#include <cstring>
#include <fstream>

#include "bench_util.h"
#include "workload/importers/trace_synth.h"
#include "workload/trace.h"

namespace kvbench {
namespace {

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0)
      .count();
}

wl::WorkloadSpec trace_spec(u64 ops) {
  wl::WorkloadSpec spec;
  spec.num_ops = ops;
  spec.key_space = 1'000'000;
  spec.key_bytes = 16;
  spec.value_bytes = 512;
  spec.value_dist = wl::ValueDist::kUniform;
  spec.value_min_bytes = 64;
  spec.pattern = wl::Pattern::kZipfian;
  spec.mix = {0.05, 0.35, 0.55, 0.02};  // rest deletes
  spec.scan_length = 16;
  spec.seed = 42;
  return spec;
}

struct CodecOutcome {
  u64 trace_ops = 0;
  u64 file_bytes = 0;
  double encode_ops_per_sec = 0;
  double replay_ops_per_sec = 0;
  u64 max_chunk_bytes = 0;
  bool memory_flat = false;
};

CodecOutcome run_codec_scale(const std::string& path, u64 ops) {
  CodecOutcome out;
  out.trace_ops = ops;

  // Encode: synthetic generator -> .kvt file.
  const auto te = Clock::now();
  {
    wl::KvtWriter w(path);
    wl::SyntheticOpSource src(trace_spec(ops));
    wl::Op op;
    while (src.next(op))
      w.add(wl::TraceOp{op.type, op.key_id, op.value_bytes, op.scan_length,
                        0});
    if (!w.finish()) {
      check_shape(false, "trace encode completed without I/O errors");
      return out;
    }
  }
  const double encode_ms = ms_since(te);
  out.encode_ops_per_sec = (double)ops / (encode_ms / 1000.0);
  {
    std::ifstream f(path, std::ios::binary | std::ios::ate);
    out.file_bytes = f ? (u64)f.tellg() : 0;
  }

  // Replay: full-trace streaming decode.
  const auto tr = Clock::now();
  u64 sink = 0, replayed = 0;
  {
    wl::TraceOpSource src(path);
    wl::Op op;
    while (src.next(op)) {
      sink ^= op.key_id + op.value_bytes;
      ++replayed;
    }
    check_shape(!src.failed() && replayed == ops,
                "full trace replays cleanly end to end");
    out.max_chunk_bytes = src.reader().max_chunk_bytes();
  }
  const double replay_ms = ms_since(tr);
  out.replay_ops_per_sec = (double)replayed / (replay_ms / 1000.0);
  if (sink == 0xdeadbeef) std::printf(" ");  // keep the loop live

  // Flat memory: the chunk-buffer high-water must be bounded by the
  // chunk size at every replay length, not grow with it.
  Table t({"replay ops", "ops/s (M)", "chunk high-water KiB"});
  bool flat = true;
  for (const u64 frac : {10ull, 3ull, 1ull}) {
    const u64 limit = ops / frac;
    wl::TraceOpSource src(path, wl::TraceOpSource::Options{.limit = limit});
    wl::Op op;
    const auto t0 = Clock::now();
    u64 n = 0;
    while (src.next(op)) ++n;
    const double mops = (double)n / (ms_since(t0) * 1000.0);
    const u64 hw = src.reader().max_chunk_bytes();
    flat = flat && hw <= 2 * wl::KvtWriter::kDefaultChunkBytes;
    t.add_row({Table::num((double)n, 0), Table::num(mops, 2),
               Table::num((double)hw / (double)KiB, 1)});
  }
  out.memory_flat = flat;
  std::printf("%s", t.render().c_str());
  save_csv("trace_replay_scale", t);
  return out;
}

// Record a small KV-SSD run, replay it through an identical bed, and
// compare the full serialized reports.
bool run_fidelity() {
  auto bed_json = [](wl::KvtWriter* rec, const std::string* replay) {
    harness::KvssdBedConfig c = kvssd_cfg(device_gib(2), 8000);
    harness::KvssdBed bed(c);
    (void)harness::fill_stack(bed, 2000, 16, 512, 32);
    wl::WorkloadSpec spec = trace_spec(4000);
    spec.key_space = 2000;
    harness::RunOptions opts;
    opts.drain_after = true;
    opts.record_ops = rec;
    const harness::RunResult r =
        replay ? harness::run_workload(
                     bed, spec,
                     [replay] { return wl::TraceOpSource::from_buffer(replay); },
                     opts)
               : harness::run_workload(bed, spec, opts);
    harness::BenchReport rep("trace_replay_fidelity");
    rep.add_run("run", r);
    rep.add_device(bed);
    return rep.to_json();
  };
  std::string trace;
  wl::KvtWriter w = wl::KvtWriter::to_buffer(&trace);
  const std::string live = bed_json(&w, nullptr);
  if (!w.finish()) return false;
  const std::string replayed = bed_json(nullptr, &trace);
  return !live.empty() && live == replayed;
}

double run_synth(const std::string& path, u64 ops) {
  const auto t0 = Clock::now();
  wl::KvtReader reader(path);
  const wl::TraceProfile profile =
      wl::TraceProfile::fit(reader, /*head_ops=*/100'000);
  check_shape(profile.ok(), "trace head fits a usable profile");
  check_shape(profile.zipf_theta > 0.2,
              "fitted skew reflects the zipfian source");
  u64 n = 0;
  if (profile.ok()) {
    wl::SynthFromTraceOpSource src(profile, ops, /*seed=*/7);
    wl::Op op;
    while (src.next(op)) ++n;
  }
  const double ms = ms_since(t0);
  std::printf("synth-from-trace: fitted %llu-op head (theta %.2f, %llu "
              "keys), generated %llu ops in %.1f ms\n",
              (unsigned long long)profile.ops_fitted, profile.zipf_theta,
              (unsigned long long)profile.key_space, (unsigned long long)n,
              ms);
  return ms > 0 ? (double)n / (ms / 1000.0) : 0.0;
}

}  // namespace
}  // namespace kvbench

int main(int argc, char** argv) {
  using namespace kvbench;
  bool smoke = false;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (!std::strcmp(argv[i], "--smoke")) {
      smoke = true;
    } else if (!std::strncmp(argv[i], "--kvsim_json=", 13)) {
      json_path = argv[i] + 13;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", argv[i]);
      return 2;
    }
  }

  report_init("trace_replay");
  const auto t0 = Clock::now();
  const u64 ops = smoke ? 1'000'000 : 10'000'000;
  const std::string path = "/tmp/kvsim_bench_trace_replay.kvt";

  print_header("Trace replay 1", "codec throughput and flat-memory replay");
  const CodecOutcome c = run_codec_scale(path, ops);
  std::printf("encode %.1f M ops/s, replay %.1f M ops/s, %.1f B/op on disk\n",
              c.encode_ops_per_sec / 1e6, c.replay_ops_per_sec / 1e6,
              c.trace_ops ? (double)c.file_bytes / (double)c.trace_ops : 0.0);
  check_shape(c.replay_ops_per_sec >= 5e6,
              "trace replay sustains >= 5M ops/s");
  check_shape(c.memory_flat,
              "replay memory is chunk-bounded at every trace length");
  check_shape(c.trace_ops &&
                  c.file_bytes / c.trace_ops < 16,
              "varint/delta encoding stays under 16 B/op");

  print_header("Trace replay 2", "record->replay fidelity through a bed");
  const bool fidelity = run_fidelity();
  check_shape(fidelity, "recorded run replays byte-identically");

  print_header("Trace replay 3", "distribution-fitted synthesis");
  const double synth_ops_per_sec = run_synth(path, smoke ? 500'000 : 2'000'000);

  std::remove(path.c_str());
  const double wall_ms = ms_since(t0);

  if (!json_path.empty()) {
    std::ofstream out(json_path);
    out << "{\n"
        << "  \"benchmark\": \"trace_replay\",\n"
        << "  \"trace_ops\": " << c.trace_ops << ",\n"
        << "  \"encode_ops_per_sec\": " << c.encode_ops_per_sec << ",\n"
        << "  \"replay_ops_per_sec\": " << c.replay_ops_per_sec << ",\n"
        << "  \"file_bytes_per_op\": "
        << (c.trace_ops ? (double)c.file_bytes / (double)c.trace_ops : 0.0)
        << ",\n"
        << "  \"max_chunk_bytes\": " << c.max_chunk_bytes << ",\n"
        << "  \"synth_ops_per_sec\": " << synth_ops_per_sec << ",\n"
        << "  \"fidelity_identical\": " << (fidelity ? 1 : 0) << ",\n"
        << "  \"wall_ms\": " << wall_ms << "\n"
        << "}\n";
    std::printf("[json] %s\n", json_path.c_str());
  }

  save_report();
  return shape_exit();
}
