// Ablation bench (DESIGN.md Sec. 5): quantifies the design choices the
// paper attributes KV-SSD behavior to, by turning each off:
//   A1: 1 KiB slot alignment  -> space amplification for 50 B KVPs
//   A2: index DRAM budget     -> store latency at fixed occupancy
//   A3: compound NVMe commands-> large-key throughput cliff
//   A4: block FTL random-write reorganization -> QD64 write latency gap
#include <functional>

#include "bench_util.h"
#include "common/histogram.h"
#include "common/rng.h"

namespace kvbench {
namespace {

constexpr u32 kKeyBytes = 16;

double kv_space_amp(u32 slot_bytes, u32 page_slots) {
  harness::KvssdBedConfig cfg = kvssd_cfg(device_gib(2), 40'000);
  cfg.ftl.slot_bytes = slot_bytes;
  cfg.ftl.page_data_slots = page_slots;
  harness::KvssdBed bed(cfg);
  (void)harness::fill_stack(bed, 20'000, kKeyBytes, 50, 64);
  return (double)bed.device_bytes_used() / (double)bed.app_bytes_live();
}

double kv_store_latency_us(u64 index_dram) {
  harness::KvssdBedConfig cfg = kvssd_cfg(device_gib(2), 600'000);
  cfg.ftl.index.dram_bytes = index_dram;
  harness::KvssdBed bed(cfg);
  (void)harness::fill_stack(bed, 400'000, kKeyBytes, 512, 128);
  wl::WorkloadSpec spec;
  spec.num_ops = 20'000;
  spec.key_space = 400'000;
  spec.key_bytes = kKeyBytes;
  spec.value_bytes = 512;
  spec.pattern = wl::Pattern::kUniform;
  spec.mix = wl::OpMix::update_only();
  spec.queue_depth = 8;
  const auto r = run_workload(bed, spec, {.drain_after = true});
  report().add_run("index_dram_" + std::to_string(index_dram / MiB) + "MiB",
                   r);
  return r.update.mean() / 1000.0;
}

double large_key_kops(bool compound) {
  harness::KvssdBedConfig cfg = kvssd_cfg(device_gib(2), 60'000);
  cfg.nvme.compound_commands = compound;
  harness::KvssdBed bed(cfg);
  wl::WorkloadSpec spec;
  spec.num_ops = 30'000;
  spec.key_space = 30'000;
  spec.key_bytes = 64;  // needs two commands without compounding
  spec.value_bytes = 100;
  spec.pattern = wl::Pattern::kUniform;
  spec.mix = wl::OpMix::insert_only();
  spec.queue_depth = 32;
  const auto r = run_workload(bed, spec, {.drain_after = true});
  report().add_run(compound ? "large_key/compound" : "large_key/two_command",
                   r);
  return r.throughput_ops_per_sec() / 1000.0;
}

// A5: hotness-hint write streams (the paper's "may help in designing
// efficient data-placement strategies" observation). Skewed updates with
// a hot/cold hint separate short-lived from long-lived blobs, cutting GC
// write amplification.
struct StreamResult {
  double waf;
  double mean_us;
};

StreamResult zipf_update_with_streams(u32 streams) {
  harness::KvssdBedConfig cfg = kvssd_cfg(device_gib(2), 400'000);
  cfg.ftl.write_streams = streams;
  harness::KvssdBed bed(cfg);
  const u64 keys = bed.ftl().max_kvp_capacity() * 8 / 10 / 4;  // 80% fill
  (void)harness::fill_stack(bed, keys, kKeyBytes, 4 * KiB, 128);

  // Drive updates directly so the hint can be derived from the Zipf rank
  // (rank < 10% of the space = hot).
  ZipfGenerator zipf(keys, 0.99);
  Rng rng(17);
  const u64 ops = keys;
  u64 inflight = 0, issued = 0, completed = 0;
  LatencyHistogram lat;
  sim::EventQueue& eq = bed.eq();
  std::function<void()> pump = [&] {
    while (inflight < 64 && issued < ops) {
      ++issued;
      ++inflight;
      const u64 rank = zipf.next(rng);
      const u64 id = scatter_rank(rank, keys);
      const u8 hint = streams > 1 && rank < keys / 10 ? 1 : 0;
      const TimeNs t0 = eq.now();
      bed.device().store(
          wl::make_key(id, kKeyBytes),
          ValueDesc{4 * KiB, issued},
          [&, t0](Status) {
            lat.record(eq.now() - t0);
            --inflight;
            ++completed;
            pump();
          },
          hint);
    }
  };
  pump();
  while (completed < ops && eq.step()) {
  }
  return StreamResult{bed.ftl().stats().waf(), lat.mean() / 1000.0};
}

// A6: device read cache (extension). The production KV-SSD has no read
// cache, so Zipf-hot keys serialize on their dies (the Fig. 2c read
// anomaly); a small blob cache absorbs them.
double zipf_read_mean_us(u64 cache_bytes) {
  harness::KvssdBedConfig cfg = kvssd_cfg(device_gib(2), 200'000);
  cfg.ftl.read_cache_bytes = cache_bytes;
  harness::KvssdBed bed(cfg);
  (void)harness::fill_stack(bed, 100'000, kKeyBytes, 4 * KiB, 128);
  wl::WorkloadSpec spec;
  spec.num_ops = 40'000;
  spec.key_space = 100'000;
  spec.key_bytes = kKeyBytes;
  spec.value_bytes = 4 * KiB;
  spec.pattern = wl::Pattern::kZipfian;
  spec.mix = wl::OpMix::read_only();
  spec.queue_depth = 64;
  return run_workload(bed, spec, {.drain_after = true}).read.mean() / 1000.0;
}

double block_write_p50_us(TimeNs reorg_ns) {
  harness::BlockBedConfig cfg;
  cfg.dev = device_gib(2);
  cfg.ftl.reorg_per_page_ns = reorg_ns;
  harness::BlockDirectBed bed(cfg);
  harness::BlockRunSpec spec;
  spec.num_ops = 30'000;
  spec.io_bytes = 4 * KiB;
  spec.span_bytes = 30'000ull * 4 * KiB;
  spec.queue_depth = 64;
  return run_block(bed.eq(), bed.device(), spec, true).insert.mean() /
         1000.0;
}

}  // namespace
}  // namespace kvbench

int main() {
  using namespace kvbench;
  print_header("Ablation", "design-choice sensitivity");
  report_init("ablation_design");

  Table a1({"A1: slot alignment", "space amp @ 50 B values"});
  const double sa_1k = kv_space_amp(1024, 24);
  const double sa_256 = kv_space_amp(256, 96);
  const double sa_64 = kv_space_amp(64, 384);
  a1.add_row({"1 KiB slots (device default)", Table::num(sa_1k, 2)});
  a1.add_row({"256 B slots", Table::num(sa_256, 2)});
  a1.add_row({"64 B slots", Table::num(sa_64, 2)});
  std::printf("%s\n", a1.render().c_str());

  Table a2({"A2: index DRAM", "update mean us @ 400k KVPs"});
  double a2_lat[3];
  int a2i = 0;
  for (u64 dram : {2ull * MiB, 8ull * MiB, 32ull * MiB}) {
    a2_lat[a2i] = kv_store_latency_us(dram);
    a2.add_row({format_bytes((double)dram), Table::num(a2_lat[a2i], 1)});
    ++a2i;
    std::fflush(stdout);
  }
  std::printf("%s\n", a2.render().c_str());

  Table a3({"A3: NVMe command set", "64 B-key store kops/s"});
  const double a3_base = large_key_kops(false);
  const double a3_comp = large_key_kops(true);
  a3.add_row({"two commands per op (default)", Table::num(a3_base, 1)});
  a3.add_row({"compound commands [10]", Table::num(a3_comp, 1)});
  std::printf("%s\n", a3.render().c_str());

  Table a4({"A4: block reorg work/page", "4K rand write mean us @ QD64"});
  double a4_lat[4];
  int a4i = 0;
  for (TimeNs reorg : {0ull, 11000ull, 22000ull, 44000ull}) {
    a4_lat[a4i] = block_write_p50_us(reorg);
    a4.add_row({format_time_ns((double)reorg), Table::num(a4_lat[a4i], 1)});
    ++a4i;
    std::fflush(stdout);
  }
  std::printf("%s\n", a4.render().c_str());

  Table a5({"A5: write streams", "WAF @ 80% fill zipf updates",
            "update mean us"});
  StreamResult a5_r[3];
  int a5i = 0;
  for (u32 s : {1u, 2u, 4u}) {
    a5_r[a5i] = zipf_update_with_streams(s);
    a5.add_row({s == 1 ? "1 (no hints, device default)" : std::to_string(s),
                Table::num(a5_r[a5i].waf, 2),
                Table::num(a5_r[a5i].mean_us, 1)});
    ++a5i;
    std::fflush(stdout);
  }
  std::printf("%s\n", a5.render().c_str());

  Table a6({"A6: device read cache", "Zipf read mean us @ QD64"});
  double a6_lat[3];
  int a6i = 0;
  for (u64 cache : {0ull, 4ull * MiB, 16ull * MiB}) {
    a6_lat[a6i] = zipf_read_mean_us(cache);
    a6.add_row({cache ? format_bytes((double)cache) : "none (device default)",
                Table::num(a6_lat[a6i], 1)});
    ++a6i;
    std::fflush(stdout);
  }
  std::printf("%s\n", a6.render().c_str());

  std::printf(
      "Reading: A1 removing 1 KiB alignment kills small-KVP space amp "
      "(at an index-size cost the paper hypothesizes); A2 index DRAM "
      "moves the Fig. 3 cliff; A3 compounding removes the Fig. 8 cliff; "
      "A4 block reorganization work is what KV-SSD's packer avoids at "
      "high concurrency (Fig. 4b); A5 hotness-hint streams cut GC write "
      "amplification under skewed updates (the data-placement metadata "
      "the paper notes the NVMe KV command set lacks); A6 a small device "
      "read cache absorbs Zipf-hot reads that otherwise serialize on "
      "single dies.\n\n");
  check_shape(sa_64 < sa_256 && sa_256 < sa_1k && sa_1k > 10,
              "A1: space amp scales with slot alignment");
  check_shape(a2_lat[0] > a2_lat[1] && a2_lat[1] > a2_lat[2] * 2,
              "A2: index DRAM moves the Fig. 3 cliff");
  check_shape(a3_comp > a3_base * 1.3, "A3: compound commands lift kops");
  check_shape(a4_lat[3] > a4_lat[0] * 1.3,
              "A4: reorganization work inflates QD64 write latency");
  check_shape(a5_r[1].waf < a5_r[0].waf,
              "A5: hotness streams cut GC write amplification");
  check_shape(a6_lat[1] < a6_lat[0] * 0.6,
              "A6: a small read cache absorbs Zipf-hot reads");
  save_report();
  return shape_exit();
}
