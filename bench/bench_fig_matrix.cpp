// Figure-matrix driver on the parallel sweep engine: runs the paper's
// three stacks (KV-SSD, LSM-on-block, HashKV-on-block) across a value-size
// axis as independent (config, seed) sweep cells, first at --threads=1 and
// then at --threads=N, and verifies the tentpole determinism claim: the
// merged BenchReport JSON is byte-identical regardless of thread count.
// Wall-clock for both passes is recorded so scripts/bench.sh can gate the
// sweep scaling factor alongside the single-thread perf baseline.
//
// Flags:
//   --threads=N       pool width for the parallel pass (default: hardware)
//   --smoke           small cells for CI (same matrix, fewer ops)
//   --kvsim_json=PATH write {threads, hw_threads, wall_ms_1t, wall_ms_nt,
//                     speedup, cells} for the bench.sh scaling gate
#include <chrono>
#include <cstring>
#include <fstream>
#include <thread>

#include "bench_util.h"
#include "harness/sweep.h"

namespace kvbench {
namespace {

constexpr u64 kBaseSeed = 42;

struct MatrixSpec {
  u64 fill_keys;
  u64 ops;
};

wl::WorkloadSpec mixed_spec(const MatrixSpec& m, u32 value_bytes, u64 seed) {
  wl::WorkloadSpec spec;
  spec.num_ops = m.ops;
  spec.key_space = m.fill_keys;
  spec.key_bytes = 16;
  spec.value_bytes = value_bytes;
  spec.mix = {0.2, 0.3, 0.5, 0};
  spec.queue_depth = 32;
  spec.seed = seed;
  return spec;
}

// Each cell constructs its bed inside the callable (the confinement
// contract: nothing simulator-shaped crosses the pool boundary) and
// derives every random stream from its (base_seed, index) cell seed.
std::vector<harness::SweepCell> build_cells(const MatrixSpec& m) {
  std::vector<harness::SweepCell> cells;
  u64 index = 0;
  for (u32 value_bytes : {512u, 4096u, 16384u}) {
    const u64 seed = harness::SweepRunner::cell_seed(kBaseSeed, index++);
    cells.push_back(harness::sweep_cell(
        "kvssd/v" + std::to_string(value_bytes), [m, value_bytes, seed] {
          harness::KvssdBed bed(kvssd_cfg(device_gib(4), m.fill_keys * 2));
          (void)harness::fill_stack(bed, m.fill_keys, 16, value_bytes, 32);
          return run_workload(bed, mixed_spec(m, value_bytes, seed),
                              {.drain_after = true});
        }));
    const u64 lseed = harness::SweepRunner::cell_seed(kBaseSeed, index++);
    cells.push_back(harness::sweep_cell(
        "lsm/v" + std::to_string(value_bytes), [m, value_bytes, lseed] {
          harness::LsmBed bed(lsm_cfg(device_gib(4)));
          (void)harness::fill_stack(bed, m.fill_keys, 16, value_bytes, 32);
          return run_workload(bed, mixed_spec(m, value_bytes, lseed),
                              {.drain_after = true});
        }));
    const u64 hseed = harness::SweepRunner::cell_seed(kBaseSeed, index++);
    cells.push_back(harness::sweep_cell(
        "hashkv/v" + std::to_string(value_bytes), [m, value_bytes, hseed] {
          harness::HashKvBed bed(hashkv_cfg(device_gib(4)));
          (void)harness::fill_stack(bed, m.fill_keys, 16, value_bytes, 32);
          return run_workload(bed, mixed_spec(m, value_bytes, hseed),
                              {.drain_after = true});
        }));
  }
  return cells;
}

struct SweepPass {
  std::string json;
  double wall_ms;
  std::vector<harness::SweepCellResult> results;
};

SweepPass run_pass(const MatrixSpec& m, u32 threads) {
  harness::SweepRunner runner(harness::SweepRunner::Options{.threads = threads});
  const auto t0 = std::chrono::steady_clock::now();
  auto results = runner.run(build_cells(m));
  const auto t1 = std::chrono::steady_clock::now();
  harness::BenchReport report("fig_matrix");
  harness::add_sweep_results(report, results);
  SweepPass pass;
  pass.json = report.to_json();
  pass.wall_ms =
      std::chrono::duration<double, std::milli>(t1 - t0).count();
  pass.results = std::move(results);
  return pass;
}

}  // namespace
}  // namespace kvbench

int main(int argc, char** argv) {
  using namespace kvbench;
  bool smoke = false;
  u32 threads = std::max(1u, std::thread::hardware_concurrency());
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (!std::strcmp(argv[i], "--smoke")) {
      smoke = true;
    } else if (!std::strncmp(argv[i], "--threads=", 10)) {
      threads = (u32)std::max(1, std::atoi(argv[i] + 10));
    } else if (!std::strncmp(argv[i], "--kvsim_json=", 13)) {
      json_path = argv[i] + 13;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", argv[i]);
      return 2;
    }
  }
  const MatrixSpec m = smoke ? MatrixSpec{600, 1200} : MatrixSpec{4000, 8000};

  print_header("Fig matrix", "3 stacks x 3 value sizes via SweepRunner");
  report_init("fig_matrix_sweep");
  std::printf("%llu mixed ops per cell, 9 cells, parallel pass at %u "
              "thread(s), hardware_concurrency=%u\n",
              (unsigned long long)m.ops, threads,
              std::thread::hardware_concurrency());

  const SweepPass serial = run_pass(m, 1);
  const SweepPass wide = run_pass(m, threads);

  Table t({"cell", "ops", "p50 us", "p99 us"});
  for (const auto& r : wide.results) {
    t.add_row({r.label, Table::num((double)r.result.ops, 0),
               us(r.result.all.percentile(0.5)),
               us(r.result.all.percentile(0.99))});
    report().add_run(r.label, r.result);
  }
  std::printf("%s", t.render().c_str());
  save_csv("fig_matrix_sweep", t);

  const double speedup =
      wide.wall_ms > 0 ? serial.wall_ms / wide.wall_ms : 0.0;
  std::printf("\nwall-clock: 1 thread %.1f ms, %u threads %.1f ms "
              "(speedup %.2fx)\n",
              serial.wall_ms, threads, wide.wall_ms, speedup);

  // The determinism tentpole: scheduling must be invisible in the data.
  check_shape(serial.json == wide.json,
              "merged JSON byte-identical at --threads=1 vs --threads=N");
  bool all_ran = !wide.results.empty();
  for (const auto& r : wide.results) all_ran = all_ran && r.result.ops == m.ops;
  check_shape(all_ran, "every cell completed its full op count");
  // Scaling is gated against the committed baseline by scripts/bench.sh;
  // the absolute >=3x floor only applies on >=8-core hardware.
  if (std::thread::hardware_concurrency() >= 8 && threads >= 8)
    check_shape(speedup >= 3.0, "sweep speedup >= 3x at 8 threads");

  if (!json_path.empty()) {
    std::ofstream out(json_path);
    out << "{\n"
        << "  \"benchmark\": \"fig_matrix_sweep\",\n"
        << "  \"threads\": " << threads << ",\n"
        << "  \"hw_threads\": " << std::thread::hardware_concurrency()
        << ",\n"
        << "  \"cells\": " << wide.results.size() << ",\n"
        << "  \"wall_ms_1t\": " << serial.wall_ms << ",\n"
        << "  \"wall_ms_nt\": " << wide.wall_ms << ",\n"
        << "  \"speedup\": " << speedup << "\n"
        << "}\n";
    std::printf("[json] %s\n", json_path.c_str());
  }

  save_report();
  return shape_exit();
}
