// Fig. 8 reproduction: device throughput vs key size for store operations,
// synchronous (QD 1) and asynchronous (QD 32). Keys above the 16 B inline
// budget need a second 64 B NVMe command, cutting throughput; the
// compound-command ablation (HotStorage'19 [10]) removes the cliff.
#include "bench_util.h"

namespace kvbench {
namespace {

constexpr u64 kOps = 30'000;
constexpr u32 kValueBytes = 100;  // small values make command cost visible

double store_kops(u32 key_bytes, u32 qd, bool compound) {
  harness::KvssdBedConfig cfg = kvssd_cfg(device_gib(2), kOps * 2);
  cfg.nvme.compound_commands = compound;
  harness::KvssdBed bed(cfg);
  wl::WorkloadSpec spec;
  spec.num_ops = kOps;
  spec.key_space = kOps;
  spec.key_bytes = key_bytes;
  spec.value_bytes = kValueBytes;
  spec.pattern = wl::Pattern::kUniform;
  spec.mix = wl::OpMix::insert_only();
  spec.queue_depth = qd;
  const harness::RunResult r = harness::run_workload(bed, spec, {.drain_after = true});
  report().add_run("key" + std::to_string(key_bytes) + "B/qd" +
                       std::to_string(qd) + (compound ? "/compound" : ""),
                   r);
  report().add_device(bed);
  return r.throughput_ops_per_sec() / 1000.0;
}

}  // namespace
}  // namespace kvbench

int main() {
  using namespace kvbench;
  print_header("Fig 8", "store throughput vs key size (NVMe command cost)");
  report_init("fig8_keysize_nvme");
  std::printf("%llu stores, %u B values\n", (unsigned long long)kOps,
              kValueBytes);

  Table t({"key bytes", "NVMe cmds", "sync kops/s", "async kops/s",
           "async+compound kops/s"});
  nvme::NvmeConfig probe;
  double async16 = 0, async20 = 0, comp16 = 0, comp255 = 0, sync16 = 0,
         sync20 = 0;
  for (u32 kb : {4u, 8u, 12u, 16u, 20u, 32u, 64u, 128u, 255u}) {
    const double sync_k = store_kops(kb, 1, false);
    const double async_k = store_kops(kb, 32, false);
    const double comp_k = store_kops(kb, 32, true);
    if (kb == 16) {
      async16 = async_k;
      comp16 = comp_k;
      sync16 = sync_k;
    }
    if (kb == 20) {
      async20 = async_k;
      sync20 = sync_k;
    }
    if (kb == 255) comp255 = comp_k;
    t.add_row({std::to_string(kb),
               std::to_string(nvme::kv_commands_for_key(probe, kb)),
               Table::num(sync_k, 1), Table::num(async_k, 1),
               Table::num(comp_k, 1)});
    std::fflush(stdout);
  }
  std::printf("%s", t.render().c_str());
  save_csv("fig8_keysize", t);
  std::printf(
      "\nExpected shape (paper): throughput cliff crossing 16 B (second "
      "command per op, ~0.5x); compound commands flatten it.\n\n");
  check_shape(async20 / async16 > 0.4 && async20 / async16 < 0.7,
              "async cliff ~0.53x crossing 16 B keys");
  check_shape(sync20 < sync16, "sync throughput also drops past 16 B");
  check_shape(comp255 > comp16 * 0.9,
              "compound commands flatten the cliff");
  save_report();
  return shape_exit();
}
