// "Table 1" reproduction: the headline ratios quoted in the paper's
// introduction, measured on the simulated stacks:
//   * host CPU utilization: KV-SSD vs RocksDB (~13x lower) and Aerospike;
//   * device bandwidth, 4 KiB random: KV-SSD as low as 0.44x (reads) and
//     0.22x (writes) of block-SSD direct I/O;
//   * direct I/O latency: KV-SSD up to 2.63x (writes) / 8.1x (reads) of
//     block-SSD;
//   * end-to-end latency: KV-SSD up to 23.08x better inserts than RocksDB
//     and 3.64x better updates than Aerospike.
#include <memory>

#include "bench_util.h"

namespace kvbench {
namespace {

constexpr u64 kOps = 50'000;
constexpr u32 kKeyBytes = 16;
constexpr u32 kValueBytes = 4 * KiB;
constexpr u32 kQd = 64;

struct E2e {
  double insert_p99_us;
  double update_p99_us;
  double cpu_us_per_op;
};

E2e run_e2e(harness::KvStack& stack) {
  wl::WorkloadSpec spec;
  spec.num_ops = kOps;
  spec.key_space = kOps;
  spec.key_bytes = kKeyBytes;
  spec.value_bytes = kValueBytes;
  spec.pattern = wl::Pattern::kUniform;
  spec.queue_depth = kQd;
  spec.mix = wl::OpMix::insert_only();
  const auto ins = run_workload(stack, spec, {.drain_after = true});
  (void)harness::fill_stack(stack, kOps, kKeyBytes, kValueBytes, 128, 9);
  spec.mix = wl::OpMix::update_only();
  spec.seed = 5;
  const auto upd = run_workload(stack, spec, {.drain_after = true});
  report().add_run(std::string(stack.name()) + "/insert", ins);
  report().add_run(std::string(stack.name()) + "/update", upd);
  report().add_device(stack);
  return {(double)ins.insert.percentile(0.99) / 1000.0,
          (double)upd.update.percentile(0.99) / 1000.0,
          (double)(ins.host_cpu_ns + upd.host_cpu_ns) /
              (double)(ins.ops + upd.ops) / 1000.0};
}

}  // namespace
}  // namespace kvbench

int main() {
  using namespace kvbench;
  print_header("Table 1", "headline ratios from the paper's introduction");
  report_init("table1_summary");

  // --- end-to-end stacks ----------------------------------------------------
  const ssd::SsdConfig dev = device_gib(4);
  harness::KvssdBed kv(kvssd_cfg(dev, kOps * 2));
  harness::LsmBed rdb(lsm_cfg(dev));
  harness::HashKvBed as(hashkv_cfg(dev));
  const E2e kv_r = run_e2e(kv);
  const E2e rdb_r = run_e2e(rdb);
  const E2e as_r = run_e2e(as);

  Table e2e({"stack", "insert p99 us", "update p99 us", "host CPU us/op"});
  e2e.add_row({"KV-SSD", Table::num(kv_r.insert_p99_us, 1),
               Table::num(kv_r.update_p99_us, 1),
               Table::num(kv_r.cpu_us_per_op, 2)});
  e2e.add_row({"RocksDB", Table::num(rdb_r.insert_p99_us, 1),
               Table::num(rdb_r.update_p99_us, 1),
               Table::num(rdb_r.cpu_us_per_op, 2)});
  e2e.add_row({"Aerospike", Table::num(as_r.insert_p99_us, 1),
               Table::num(as_r.update_p99_us, 1),
               Table::num(as_r.cpu_us_per_op, 2)});
  std::printf("%s", e2e.render().c_str());
  save_csv("table1_e2e", e2e);

  std::printf("\nratios (paper targets in parentheses):\n");
  std::printf("  CPU: RocksDB / KV-SSD            = %s (paper: ~13x)\n",
              ratio(rdb_r.cpu_us_per_op, kv_r.cpu_us_per_op).c_str());
  std::printf("  CPU: Aerospike / KV-SSD          = %s (paper: much lower "
              "reduction than vs RocksDB)\n",
              ratio(as_r.cpu_us_per_op, kv_r.cpu_us_per_op).c_str());
  std::printf("  insert p99: RocksDB / KV-SSD     = %s (paper: up to 23.08x)\n",
              ratio(rdb_r.insert_p99_us, kv_r.insert_p99_us).c_str());
  std::printf("  update p99: Aerospike / KV-SSD   = %s (paper: up to 3.64x)\n",
              ratio(as_r.update_p99_us, kv_r.update_p99_us).c_str());

  // --- direct I/O: 4 KiB random, KV vs block, at QD 1 and QD 64 -------------
  struct Direct {
    harness::RunResult w, r;
  };
  auto kv_direct = [&](u32 qd) {
    harness::KvssdBed kvd(kvssd_cfg(dev, kOps * 2));
    wl::WorkloadSpec spec;
    spec.num_ops = kOps;
    spec.key_space = kOps;
    spec.key_bytes = kKeyBytes;
    spec.value_bytes = kValueBytes;
    spec.pattern = wl::Pattern::kUniform;
    spec.queue_depth = qd;
    spec.mix = wl::OpMix::insert_only();
    Direct d;
    d.w = run_workload(kvd, spec, {.drain_after = true});
    (void)harness::fill_stack(kvd, kOps, kKeyBytes, kValueBytes, 128, 9);
    spec.mix = wl::OpMix::read_only();
    spec.seed = 1234;  // independent of the write sequence
    d.r = run_workload(kvd, spec, {.drain_after = true});
    return d;
  };
  auto blk_direct = [&](u32 qd) {
    harness::BlockBedConfig bcfg;
    bcfg.dev = dev;
    harness::BlockDirectBed blk(bcfg);
    harness::BlockRunSpec bspec;
    bspec.num_ops = kOps;
    bspec.io_bytes = kValueBytes;
    bspec.span_bytes = (u64)kOps * kValueBytes;
    bspec.queue_depth = qd;
    bspec.op = harness::BlockOp::kWrite;
    Direct d;
    d.w = run_block(blk.eq(), blk.device(), bspec, true);
    bspec.op = harness::BlockOp::kRead;
    bspec.seed = 1234;  // independent of the write sequence
    d.r = run_block(blk.eq(), blk.device(), bspec, true);
    return d;
  };

  double qd1_w_ratio = 0, qd1_r_ratio = 0, qd64_w_ratio = 0;
  for (u32 qd : {1u, kQd}) {
    const Direct kvd = kv_direct(qd);
    const Direct bld = blk_direct(qd);
    if (qd == 1) {
      qd1_w_ratio = kvd.w.insert.mean() / bld.w.insert.mean();
      qd1_r_ratio = kvd.r.read.mean() / bld.r.read.mean();
    } else {
      qd64_w_ratio = kvd.w.insert.mean() / bld.w.insert.mean();
    }
    Table direct({"metric", "KV-SSD", "block-SSD", "KV/block"});
    direct.add_row({"4K rand write MiB/s",
                    mibs(kvd.w.bandwidth_bytes_per_sec()),
                    mibs(bld.w.bandwidth_bytes_per_sec()),
                    ratio(kvd.w.bandwidth_bytes_per_sec(),
                          bld.w.bandwidth_bytes_per_sec())});
    direct.add_row({"4K rand read MiB/s",
                    mibs(kvd.r.bandwidth_bytes_per_sec()),
                    mibs(bld.r.bandwidth_bytes_per_sec()),
                    ratio(kvd.r.bandwidth_bytes_per_sec(),
                          bld.r.bandwidth_bytes_per_sec())});
    direct.add_row({"4K rand write mean us", us(kvd.w.insert.mean()),
                    us(bld.w.insert.mean()),
                    ratio(kvd.w.insert.mean(), bld.w.insert.mean())});
    direct.add_row({"4K rand read mean us", us(kvd.r.read.mean()),
                    us(bld.r.read.mean()),
                    ratio(kvd.r.read.mean(), bld.r.read.mean())});
    std::printf("\ndirect I/O, 4 KiB random, QD %u (paper headline, "
                "low-concurrency regime: bandwidth as low as 0.44x read / "
                "0.22x write; latency up to 8.1x read / 2.63x write; at "
                "high QD the Fig. 4 crossover favors KV-SSD):\n%s",
                qd, direct.render().c_str());
  }

  std::printf("\n");
  check_shape(rdb_r.cpu_us_per_op / kv_r.cpu_us_per_op > 5.0,
              "host CPU: RocksDB many-fold above KV-SSD (paper ~13x)");
  check_shape(as_r.cpu_us_per_op / kv_r.cpu_us_per_op <
                  rdb_r.cpu_us_per_op / kv_r.cpu_us_per_op / 2,
              "Aerospike CPU gap much smaller than RocksDB's");
  check_shape(rdb_r.insert_p99_us / kv_r.insert_p99_us > 3.0,
              "insert p99: RocksDB multiples above KV-SSD (paper to 23x)");
  check_shape(as_r.update_p99_us / kv_r.update_p99_us > 1.2,
              "update p99: Aerospike above KV-SSD (paper to 3.64x)");
  check_shape(qd1_w_ratio > 1.0 && qd1_r_ratio > 1.0,
              "direct I/O QD1: KV-SSD slower both ways");
  check_shape(qd64_w_ratio < 1.0,
              "direct I/O QD64: KV-SSD write crossover (Fig. 4)");
  save_report();
  return shape_exit();
}
