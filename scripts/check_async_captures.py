#!/usr/bin/env python3
"""Detect self-keeping async closure chains (the PR 1 leak class).

The simulator's recursive async idiom allocates a std::function on the
heap and makes it reschedule itself through the event queue:

    auto step = std::make_shared<std::function<void()>>();
    *step = [this, step] {            // BAD: strong self-capture
      ...
      eq_.schedule_after(dt, [step] { (*step)(); });
    };

The lambda stored in *step owns a strong reference to itself, so the
shared_ptr's refcount can never reach zero: every chain leaks its
closure (and everything the closure captures — often the owning object).
The correct idiom captures itself weakly and lets the pending event hold
the only strong reference:

    auto step = std::make_shared<std::function<void()>>();
    *step = [this, wstep = std::weak_ptr<std::function<void()>>(step)] {
      auto step = wstep.lock();       // revive for the next hop
      ...
    };

This checker flags every `*X = [...]` assignment whose capture list
takes a strong copy of X, where X was declared as a
std::make_shared<std::function<...>> chain head. The same leak class
exists for heap-shared harness::SweepCell task thunks
(`auto cell = std::make_shared<harness::SweepCell>(); cell->run = [cell]
{...};`), so make_shared<SweepCell> declarations are chain heads too and
the `X->run = [...]` / `(*X).run = [...]` spellings are checked.

Engines:
  * libclang (used automatically when the python bindings and a matching
    libclang are importable): verifies candidates against the real AST,
    eliminating token-level false positives.
  * regex/tokenizer (always available, the default in minimal
    containers): operates on comment- and string-stripped source. The
    pattern is syntactically narrow enough that this is exact on this
    codebase's idiom.

Usage:
  check_async_captures.py [paths...]   # default: src/ bench/ tests/
  check_async_captures.py --self-test  # run against tests/lint_fixtures
Exit status: 0 clean, 1 findings, 2 usage/internal error.
"""

from __future__ import annotations

import os
import re
import sys
from dataclasses import dataclass

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
DEFAULT_DIRS = ("src", "bench", "tests")
FIXTURE_DIR = os.path.join("tests", "lint_fixtures")
CXX_EXTS = (".cc", ".cpp", ".cxx", ".h", ".hpp")


@dataclass
class Finding:
    path: str
    line: int
    var: str
    detail: str

    def __str__(self) -> str:
        return (f"{self.path}:{self.line}: error: lambda assigned to "
                f"'*{self.var}' strongly captures '{self.var}' "
                f"({self.detail}); capture a std::weak_ptr and lock() it "
                f"instead, or the chain keeps itself alive forever")


# ---------------------------------------------------------------------------
# Source preprocessing: blank out comments and string/char literals while
# preserving line structure so reported line numbers stay exact.
# ---------------------------------------------------------------------------

def strip_comments_and_strings(text: str) -> str:
    out = []
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        if c == "/" and i + 1 < n and text[i + 1] == "/":
            j = text.find("\n", i)
            j = n if j < 0 else j
            out.append(" " * (j - i))
            i = j
        elif c == "/" and i + 1 < n and text[i + 1] == "*":
            j = text.find("*/", i + 2)
            j = n if j < 0 else j + 2
            out.append("".join(ch if ch == "\n" else " "
                               for ch in text[i:j]))
            i = j
        elif c in "\"'":
            quote = c
            j = i + 1
            while j < n:
                if text[j] == "\\":
                    j += 2
                    continue
                if text[j] == quote:
                    j += 1
                    break
                j += 1
            out.append(quote + " " * (j - i - 2) + quote if j - i >= 2
                       else text[i:j])
            i = j
        else:
            out.append(c)
            i += 1
    return "".join(out)


# ---------------------------------------------------------------------------
# Capture-list analysis
# ---------------------------------------------------------------------------

def split_top_level(s: str) -> list[str]:
    """Split a capture list on commas not nested in <>, (), {}, []."""
    parts, depth, start = [], 0, 0
    for i, c in enumerate(s):
        if c in "<({[":
            depth += 1
        elif c in ">)}]":
            depth = max(0, depth - 1)
        elif c == "," and depth == 0:
            parts.append(s[start:i])
            start = i + 1
    parts.append(s[start:])
    return [p.strip() for p in parts if p.strip()]


def strong_capture_of(capture_list: str, var: str) -> str | None:
    """Return a description if `var` is captured by strong copy."""
    for entry in split_top_level(capture_list):
        if entry == var:
            return "implicit copy capture"
        if entry == "&" + var:
            continue  # by-reference: dangling risk, but not this leak class
        m = re.match(r"^(\w+)\s*=\s*(.*)$", entry, re.S)
        if m:
            init = m.group(2).strip()
            if init == var:
                return f"copy-initialized capture '{m.group(1)}'"
            # `w = std::weak_ptr<...>(var)` and friends are the fix, not
            # the bug: `var` appearing inside a call expression is fine
            # unless the call itself is a copy (shared_ptr(var)).
            if re.match(r"^(::)?std\s*::\s*shared_ptr\s*<[^;]*>\s*\(\s*"
                        + re.escape(var) + r"\s*\)$", init):
                return f"shared_ptr copy capture '{m.group(1)}'"
    return None


# ---------------------------------------------------------------------------
# Regex/tokenizer engine
# ---------------------------------------------------------------------------

# Chain heads: shared std::function (the original idiom), shared
# sim::Task (the event queue's native callback type schedules sink),
# shared sim::Fn<Sig> (the move-only callback the stack API uses), or a
# shared harness::SweepCell whose `run` thunk can self-capture the same
# way any other shared callable can.
DECL_RE = re.compile(
    r"\bauto\s+(\w+)\s*=\s*(?:::)?std\s*::\s*make_shared\s*<\s*"
    r"(?:(?:::)?std\s*::\s*function\b"
    r"|(?:(?:::)?kvsim\s*::\s*)?(?:sim\s*::\s*)?Task\s*>"
    r"|(?:(?:::)?kvsim\s*::\s*)?(?:sim\s*::\s*)?Fn\s*<"
    r"|(?:(?:::)?kvsim\s*::\s*)?(?:harness\s*::\s*)?SweepCell\s*>)")

# Assignment shapes that store a lambda into the shared callable slot:
# the classic `*step = [...]`, plus the SweepCell task-thunk member in
# both arrow and deref-dot spelling.
ASSIGN_RE_TMPLS = (
    r"\*\s*{var}\s*=\s*\[",
    r"\b{var}\s*->\s*run\s*=\s*\[",
    r"\(\s*\*\s*{var}\s*\)\s*\.\s*run\s*=\s*\[",
)


def find_capture_list(text: str, open_bracket: int) -> tuple[str, int] | None:
    """Return (capture list contents, end index) for `[` at open_bracket."""
    depth, i = 0, open_bracket
    while i < len(text):
        if text[i] == "[":
            depth += 1
        elif text[i] == "]":
            depth -= 1
            if depth == 0:
                return text[open_bracket + 1:i], i
        i += 1
    return None


def check_text(path: str, raw: str) -> list[Finding]:
    text = strip_comments_and_strings(raw)
    findings = []
    chain_vars = {}  # name -> decl line
    for m in DECL_RE.finditer(text):
        chain_vars[m.group(1)] = text.count("\n", 0, m.start()) + 1
    for var in chain_vars:
        for tmpl in ASSIGN_RE_TMPLS:
            for am in re.finditer(tmpl.format(var=re.escape(var)), text):
                open_bracket = text.index("[", am.start())
                cap = find_capture_list(text, open_bracket)
                if cap is None:
                    continue
                detail = strong_capture_of(cap[0], var)
                if detail:
                    line = text.count("\n", 0, am.start()) + 1
                    findings.append(Finding(path, line, var, detail))
    return findings


# ---------------------------------------------------------------------------
# Optional libclang verification
# ---------------------------------------------------------------------------

def libclang_available() -> bool:
    try:
        import clang.cindex  # noqa: F401
        clang.cindex.Index.create()
        return True
    except Exception:
        return False


def verify_with_libclang(path: str, findings: list[Finding]) -> list[Finding]:
    """Keep only findings whose variable really is a shared_ptr decl.

    The textual engine is already decl-anchored, so this only removes
    pathological cases (e.g. a same-named variable shadowing the chain
    head with a non-owning type between decl and assignment).
    """
    try:
        import clang.cindex as ci
        index = ci.Index.create()
        tu = index.parse(path, args=["-std=c++20", "-I" + os.path.join(
            REPO_ROOT, "src")])
        shared_ptr_vars = set()
        for cur in tu.cursor.walk_preorder():
            if cur.kind == ci.CursorKind.VAR_DECL and \
                    "shared_ptr" in cur.type.spelling and \
                    ("function" in cur.type.spelling or
                     "Task" in cur.type.spelling or
                     "SweepCell" in cur.type.spelling):
                shared_ptr_vars.add(cur.spelling)
        return [f for f in findings if f.var in shared_ptr_vars]
    except Exception:
        return findings  # fall back to the textual result


# ---------------------------------------------------------------------------
# Driver
# ---------------------------------------------------------------------------

def iter_sources(paths: list[str]):
    for p in paths:
        if os.path.isfile(p):
            yield p
            continue
        for dirpath, dirnames, filenames in os.walk(p):
            dirnames[:] = [d for d in dirnames if d != "lint_fixtures"]
            for fn in sorted(filenames):
                if fn.endswith(CXX_EXTS):
                    yield os.path.join(dirpath, fn)


def run(paths: list[str], use_libclang: bool) -> list[Finding]:
    findings = []
    for path in iter_sources(paths):
        try:
            with open(path, encoding="utf-8", errors="replace") as f:
                raw = f.read()
        except OSError as e:
            print(f"check_async_captures: cannot read {path}: {e}",
                  file=sys.stderr)
            continue
        file_findings = check_text(path, raw)
        if file_findings and use_libclang:
            file_findings = verify_with_libclang(path, file_findings)
        findings.extend(file_findings)
    return findings


def self_test(use_libclang: bool) -> int:
    fixtures = os.path.join(REPO_ROOT, FIXTURE_DIR)
    bad_dir = os.path.join(fixtures, "bad")
    good_dir = os.path.join(fixtures, "good")
    if not (os.path.isdir(bad_dir) and os.path.isdir(good_dir)):
        print(f"check_async_captures: missing fixtures under {fixtures}",
              file=sys.stderr)
        return 2
    failures = 0
    for fn in sorted(os.listdir(bad_dir)):
        if not fn.endswith(CXX_EXTS):
            continue
        path = os.path.join(bad_dir, fn)
        if not run([path], use_libclang):
            print(f"SELF-TEST FAIL: expected a finding in {path}")
            failures += 1
        else:
            print(f"self-test ok (flagged): {fn}")
    for fn in sorted(os.listdir(good_dir)):
        if not fn.endswith(CXX_EXTS):
            continue
        path = os.path.join(good_dir, fn)
        got = run([path], use_libclang)
        if got:
            for f in got:
                print(f"SELF-TEST FAIL (false positive): {f}")
            failures += 1
        else:
            print(f"self-test ok (clean):   {fn}")
    if failures:
        print(f"check_async_captures self-test: {failures} failure(s)")
        return 1
    print("check_async_captures self-test: all fixtures behaved")
    return 0


def main(argv: list[str]) -> int:
    args = [a for a in argv[1:] if not a.startswith("--")]
    flags = {a for a in argv[1:] if a.startswith("--")}
    unknown = flags - {"--self-test", "--no-libclang", "--help"}
    if unknown or "--help" in flags:
        print(__doc__)
        return 0 if "--help" in flags else 2
    use_libclang = "--no-libclang" not in flags and libclang_available()
    if "--self-test" in flags:
        return self_test(use_libclang)
    paths = args or [os.path.join(REPO_ROOT, d) for d in DEFAULT_DIRS]
    findings = run(paths, use_libclang)
    for f in findings:
        print(f)
    if findings:
        print(f"check_async_captures: {len(findings)} self-keeping "
              f"closure chain(s) found", file=sys.stderr)
        return 1
    engine = "libclang" if use_libclang else "tokenizer"
    print(f"check_async_captures: clean ({engine} engine)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
