#!/usr/bin/env bash
# Wall-clock perf gate for the simulation core (see docs/API.md
# "Simulation core").
#
# Usage:
#   scripts/bench.sh               full google-benchmark microbenchmark run
#   scripts/bench.sh --smoke       timed smoke run of the event-queue cycle
#                                  plus the fig-matrix sweep; fails when
#                                  events/sec regresses >20% against the
#                                  committed BENCH_sim.json, when the steady
#                                  state allocates, when sweep-pool
#                                  scaling regresses >20% vs the committed
#                                  "sweep" baseline (absolute >=3x floor is
#                                  only enforced on >=8-core hardware), or
#                                  when the multi-tenant driver's fairness
#                                  or throughput regresses (fairness dev
#                                  <= 5%, sim ops/s within 20% of the
#                                  committed "multitenant" baseline), or
#                                  when trace replay loses record->replay
#                                  fidelity, drops below the 5M ops/s
#                                  floor, or regresses >20% vs the
#                                  committed "trace_replay" baseline, or
#                                  when the overload driver's SLO gate
#                                  breaks (protected p99 must hold the
#                                  target at 2x load with a bounded shed
#                                  fraction) or its sim ops/s regresses
#                                  >20% vs the committed "overload"
#                                  baseline
#   scripts/bench.sh --update      re-measure and rewrite BENCH_sim.json
#
# An optional trailing argument overrides the build directory (default:
# build). The smoke gate is wired into scripts/ci.sh.
set -euo pipefail

cd "$(dirname "$0")/.."

MODE=full
BUILD_DIR=build
for arg in "$@"; do
  case "$arg" in
    --smoke) MODE=smoke ;;
    --update) MODE=update ;;
    -h|--help) sed -n '2,14p' "$0"; exit 0 ;;
    *) BUILD_DIR="$arg" ;;
  esac
done

BASELINE=BENCH_sim.json
CURRENT="$BUILD_DIR/BENCH_sim.json"
SWEEP_CURRENT="$BUILD_DIR/BENCH_sweep.json"
MT_CURRENT="$BUILD_DIR/BENCH_multitenant.json"
TR_CURRENT="$BUILD_DIR/BENCH_trace_replay.json"
OV_CURRENT="$BUILD_DIR/BENCH_overload.json"

cmake -B "$BUILD_DIR" -S . >/dev/null
cmake --build "$BUILD_DIR" --target bench_sim_micro -j "$(nproc)"

if [ "$MODE" = full ]; then
  exec "$BUILD_DIR/bench/bench_sim_micro"
fi

cmake --build "$BUILD_DIR" --target bench_fig_matrix bench_multitenant \
  bench_trace_replay bench_overload -j "$(nproc)"
"$BUILD_DIR/bench/bench_sim_micro" --kvsim_json="$CURRENT"
"$BUILD_DIR/bench/bench_fig_matrix" --smoke --threads=8 \
  --kvsim_json="$SWEEP_CURRENT"
# Wall-clock best-of-3 (same idea as bench_sim_micro's internal
# best-of-3): the driver runs ~150 ms, so a single sample is scheduler
# noise on shared runners. Sim results are identical across runs; only
# the wall-derived sim_ops_per_sec varies.
for i in 1 2 3; do
  "$BUILD_DIR/bench/bench_multitenant" --smoke \
    --kvsim_json="$MT_CURRENT.$i" > "$BUILD_DIR/multitenant_run.log"
done
cat "$BUILD_DIR/multitenant_run.log"
"$BUILD_DIR/bench/bench_trace_replay" --smoke --kvsim_json="$TR_CURRENT"
# Same best-of-3 treatment for the overload driver (~250 ms of wall
# clock; its sim results are identical across runs, only the
# wall-derived sim_ops_per_sec is scheduler-sensitive).
for i in 1 2 3; do
  "$BUILD_DIR/bench/bench_overload" --smoke \
    --kvsim_json="$OV_CURRENT.$i" > "$BUILD_DIR/overload_run.log"
done
cat "$BUILD_DIR/overload_run.log"
python3 - "$MT_CURRENT" "$OV_CURRENT" <<'EOF2'
import json, sys
for path in sys.argv[1:]:
    runs = [json.load(open(f"{path}.{i}")) for i in (1, 2, 3)]
    best = max(runs, key=lambda d: d["sim_ops_per_sec"])
    with open(path, "w") as f:
        json.dump(best, f, indent=2)
        f.write("\n")
EOF2

if [ "$MODE" = update ]; then
  # The baseline document keeps the original flat event-cycle fields and
  # carries the sweep-scaling measurement as a nested "sweep" object.
  python3 - "$CURRENT" "$SWEEP_CURRENT" "$MT_CURRENT" "$TR_CURRENT" \
    "$OV_CURRENT" "$BASELINE" <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
doc["sweep"] = json.load(open(sys.argv[2]))
doc["multitenant"] = json.load(open(sys.argv[3]))
doc["trace_replay"] = json.load(open(sys.argv[4]))
doc["overload"] = json.load(open(sys.argv[5]))
with open(sys.argv[6], "w") as f:
    json.dump(doc, f, indent=2)
    f.write("\n")
EOF
  echo "bench: baseline $BASELINE updated"
  exit 0
fi

# --smoke: compare against the committed baseline.
if [ ! -f "$BASELINE" ]; then
  echo "bench: no committed $BASELINE; run scripts/bench.sh --update" >&2
  exit 1
fi

python3 - "$BASELINE" "$CURRENT" "$SWEEP_CURRENT" "$MT_CURRENT" "$TR_CURRENT" \
  "$OV_CURRENT" <<'EOF'
import json, sys

base = json.load(open(sys.argv[1]))
cur = json.load(open(sys.argv[2]))
sweep = json.load(open(sys.argv[3]))
mt = json.load(open(sys.argv[4]))
tr = json.load(open(sys.argv[5]))
ov = json.load(open(sys.argv[6]))
floor = 0.8 * base["events_per_sec"]  # 20% regression budget
print(f"bench smoke: {cur['events_per_sec'] / 1e6:.2f}M events/s "
      f"(baseline {base['events_per_sec'] / 1e6:.2f}M, "
      f"floor {floor / 1e6:.2f}M), "
      f"{cur['allocs_per_event']:.4f} allocs/event")
if cur["events_per_sec"] < floor:
    sys.exit("bench smoke FAILED: events/sec regressed more than 20% -- "
             "if intentional, rerun scripts/bench.sh --update")
if cur["allocs_per_event"] >= 0.01:
    sys.exit("bench smoke FAILED: steady-state event cycle allocates "
             f"({cur['allocs_per_event']:.4f} allocs/event; expected ~0)")

# Sweep-pool scaling gate. Wall-clock speedup is hardware-dependent, so
# the primary check is relative to the committed baseline (same >20%
# budget as events/sec); the paper-style absolute >=3x floor applies
# only where it is physically meaningful (>=8 hardware threads).
base_sweep = base.get("sweep")
print(f"bench smoke: sweep speedup {sweep['speedup']:.2f}x at "
      f"{sweep['threads']} threads ({sweep['hw_threads']} hw)")
if base_sweep is None:
    print("bench smoke: no committed sweep baseline; scaling gate skipped "
          "-- run scripts/bench.sh --update")
elif sweep["hw_threads"] < 2:
    print("bench smoke: single-core host; sweep scaling gate skipped "
          "(pool speedup is scheduler noise without parallel hardware)")
else:
    sfloor = 0.8 * base_sweep["speedup"]
    if sweep["speedup"] < sfloor:
        sys.exit(f"bench smoke FAILED: sweep speedup {sweep['speedup']:.2f}x "
                 f"regressed >20% vs baseline {base_sweep['speedup']:.2f}x -- "
                 "if intentional, rerun scripts/bench.sh --update")
if sweep["hw_threads"] >= 8 and sweep["speedup"] < 3.0:
    sys.exit(f"bench smoke FAILED: sweep speedup {sweep['speedup']:.2f}x "
             "< 3x on >=8-core hardware")

# Multi-tenant gate: the WRR fairness bound is absolute (the acceptance
# criterion, not hardware-dependent); the driver's simulated-ops/sec
# carries the same 20% regression budget as the other perf numbers.
base_mt = base.get("multitenant")
print(f"bench smoke: multitenant fairness dev {100 * mt['fairness_max_dev']:.2f}%, "
      f"{mt['sim_ops_per_sec'] / 1e3:.0f}k sim ops/s")
if mt["fairness_max_dev"] > 0.05:
    sys.exit(f"bench smoke FAILED: WRR fairness deviation "
             f"{100 * mt['fairness_max_dev']:.2f}% > 5%")
if base_mt is None:
    print("bench smoke: no committed multitenant baseline; perf gate "
          "skipped -- run scripts/bench.sh --update")
elif mt["sim_ops_per_sec"] < 0.8 * base_mt["sim_ops_per_sec"]:
    sys.exit(f"bench smoke FAILED: multitenant {mt['sim_ops_per_sec']:.0f} "
             f"sim ops/s regressed >20% vs baseline "
             f"{base_mt['sim_ops_per_sec']:.0f} -- "
             "if intentional, rerun scripts/bench.sh --update")
# Trace-replay gate: the >=5M replayed ops/s floor is the subsystem's
# absolute acceptance criterion; regression vs the committed baseline
# carries the same 20% budget, and record->replay fidelity is a hard
# pass/fail (byte-identical reports).
base_tr = base.get("trace_replay")
print(f"bench smoke: trace replay {tr['replay_ops_per_sec'] / 1e6:.1f}M ops/s, "
      f"{tr['file_bytes_per_op']:.1f} B/op, "
      f"fidelity {'ok' if tr['fidelity_identical'] else 'BROKEN'}")
if not tr["fidelity_identical"]:
    sys.exit("bench smoke FAILED: record->replay is not byte-identical")
if tr["replay_ops_per_sec"] < 5e6:
    sys.exit(f"bench smoke FAILED: trace replay "
             f"{tr['replay_ops_per_sec'] / 1e6:.1f}M ops/s < 5M floor")
if base_tr is None:
    print("bench smoke: no committed trace_replay baseline; regression "
          "gate skipped -- run scripts/bench.sh --update")
elif tr["replay_ops_per_sec"] < 0.8 * base_tr["replay_ops_per_sec"]:
    sys.exit(f"bench smoke FAILED: trace replay "
             f"{tr['replay_ops_per_sec'] / 1e6:.1f}M ops/s regressed >20% "
             f"vs baseline {base_tr['replay_ops_per_sec'] / 1e6:.1f}M -- "
             "if intentional, rerun scripts/bench.sh --update")
# Overload gate: the graceful-degradation contract is absolute (the
# admission controller must hold the protected tenant's p99 within the
# derived SLO target at 2x saturating load while shedding only the
# excess); the driver's simulated-ops/sec carries the same 20% budget.
base_ov = base.get("overload")
print(f"bench smoke: overload slo {'held' if ov['slo_held'] else 'BROKEN'}, "
      f"shed {100 * ov['shed_rate_at_2x']:.1f}% at 2x, "
      f"{ov['sim_ops_per_sec'] / 1e3:.0f}k sim ops/s")
if not ov["slo_held"]:
    sys.exit(f"bench smoke FAILED: protected p99 "
             f"{ov['protected_p99_at_2x_ns'] / 1e3:.0f}us exceeds SLO target "
             f"{ov['slo_target_ns'] / 1e3:.0f}us at 2x load")
if not 0.0 < ov["shed_rate_at_2x"] < 0.8:
    sys.exit(f"bench smoke FAILED: overload shed fraction "
             f"{100 * ov['shed_rate_at_2x']:.1f}% at 2x outside (0%, 80%) -- "
             "the controller must shed the excess, not the stream")
if base_ov is None:
    print("bench smoke: no committed overload baseline; perf gate "
          "skipped -- run scripts/bench.sh --update")
elif ov["sim_ops_per_sec"] < 0.8 * base_ov["sim_ops_per_sec"]:
    sys.exit(f"bench smoke FAILED: overload {ov['sim_ops_per_sec']:.0f} "
             f"sim ops/s regressed >20% vs baseline "
             f"{base_ov['sim_ops_per_sec']:.0f} -- "
             "if intentional, rerun scripts/bench.sh --update")
print("bench smoke passed")
EOF
