#!/usr/bin/env bash
# Wall-clock perf gate for the simulation core (see docs/API.md
# "Simulation core").
#
# Usage:
#   scripts/bench.sh               full google-benchmark microbenchmark run
#   scripts/bench.sh --smoke       timed smoke run of the event-queue cycle;
#                                  fails when events/sec regresses >20%
#                                  against the committed BENCH_sim.json, or
#                                  when the steady state allocates
#   scripts/bench.sh --update      re-measure and rewrite BENCH_sim.json
#
# An optional trailing argument overrides the build directory (default:
# build). The smoke gate is wired into scripts/ci.sh.
set -euo pipefail

cd "$(dirname "$0")/.."

MODE=full
BUILD_DIR=build
for arg in "$@"; do
  case "$arg" in
    --smoke) MODE=smoke ;;
    --update) MODE=update ;;
    -h|--help) sed -n '2,14p' "$0"; exit 0 ;;
    *) BUILD_DIR="$arg" ;;
  esac
done

BASELINE=BENCH_sim.json
CURRENT="$BUILD_DIR/BENCH_sim.json"

cmake -B "$BUILD_DIR" -S . >/dev/null
cmake --build "$BUILD_DIR" --target bench_sim_micro -j "$(nproc)"

if [ "$MODE" = full ]; then
  exec "$BUILD_DIR/bench/bench_sim_micro"
fi

"$BUILD_DIR/bench/bench_sim_micro" --kvsim_json="$CURRENT"

if [ "$MODE" = update ]; then
  cp "$CURRENT" "$BASELINE"
  echo "bench: baseline $BASELINE updated"
  exit 0
fi

# --smoke: compare against the committed baseline.
if [ ! -f "$BASELINE" ]; then
  echo "bench: no committed $BASELINE; run scripts/bench.sh --update" >&2
  exit 1
fi

python3 - "$BASELINE" "$CURRENT" <<'EOF'
import json, sys

base = json.load(open(sys.argv[1]))
cur = json.load(open(sys.argv[2]))
floor = 0.8 * base["events_per_sec"]  # 20% regression budget
print(f"bench smoke: {cur['events_per_sec'] / 1e6:.2f}M events/s "
      f"(baseline {base['events_per_sec'] / 1e6:.2f}M, "
      f"floor {floor / 1e6:.2f}M), "
      f"{cur['allocs_per_event']:.4f} allocs/event")
if cur["events_per_sec"] < floor:
    sys.exit("bench smoke FAILED: events/sec regressed more than 20% -- "
             "if intentional, rerun scripts/bench.sh --update")
if cur["allocs_per_event"] >= 0.01:
    sys.exit("bench smoke FAILED: steady-state event cycle allocates "
             f"({cur['allocs_per_event']:.4f} allocs/event; expected ~0)")
print("bench smoke passed")
EOF
