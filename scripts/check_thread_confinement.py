#!/usr/bin/env python3
"""Enforce the KVSIM_THREAD_CONFINED confinement rules (PR 7 gate).

The simulator object graph (EventQueue, FlashController, the FTLs, the
beds, ...) is deterministic single-threaded machinery: no locks, no
atomics, shared mutable state everywhere. The only legal way to use it
from the parallel sweep engine (harness::SweepRunner) is one fully
private instance per cell, constructed and destroyed inside the cell's
callable. Classes declare this contract with the KVSIM_THREAD_CONFINED
marker (src/common/thread_annotations.h); this checker rejects the three
ways the contract breaks:

  confined-global      a confined type with static storage duration — a
                       namespace-scope variable or a (function-local or
                       member) `static` instance. Static storage is
                       implicitly shared by every thread in the process.
  confined-shared-ptr  shared ownership (shared_ptr/make_shared) of a
                       confined type. Confined instances must be uniquely
                       owned so the owner is unambiguous; handing a
                       unique_ptr (or the object by move) across the pool
                       boundary stays legal.
  confined-capture     a thread-boundary lambda (std::thread/std::jthread
                       /std::async entry, or a SweepRunner cell built via
                       sweep_cell(...) / sweep_mix_cell(...) /
                       sweep_source_cell(...) / SweepCell{...}) that
                       captures a confined object by reference — directly
                       or through a unique_ptr<Confined> handle — captures
                       `this`, or uses a default [&]/[=] capture list.
                       Cells must capture plain config data by value and
                       build the simulator inside the callable.

The confined-type registry is built by scanning src/ for the marker;
files under test additionally contribute their own in-file markers, so
lint fixtures are self-contained.

The overload subsystem follows the same split the registry encodes
elsewhere: wl::ArrivalSchedule and harness::SloSpec are copyable config
that legally crosses the pool boundary by value, while the machinery
they configure — wl::ArrivalGen (seeded arrival clock) and
harness::AdmissionController (windowed latency ring) — is marked
confined and must be constructed inside each cell, exactly like a bed.

Engine: comment/string-stripped regex scan, same style and limitations
as check_async_captures.py — syntactically narrow rules that are exact
on this codebase's idiom.

Usage:
  check_thread_confinement.py [paths...]   # default: src/
  check_thread_confinement.py --self-test  # run against
                                           # tests/lint_fixtures/confinement
Exit status: 0 clean, 1 findings, 2 usage/internal error.
"""

from __future__ import annotations

import os
import re
import sys
from dataclasses import dataclass

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
DEFAULT_DIRS = ("src",)
REGISTRY_DIRS = ("src",)
FIXTURE_DIR = os.path.join("tests", "lint_fixtures", "confinement")
CXX_EXTS = (".cc", ".cpp", ".cxx", ".h", ".hpp")

MARKER = "KVSIM_THREAD_CONFINED"

# Thread-boundary call sites: a lambda in argument position here escapes
# onto another thread.
BOUNDARY_RE = re.compile(
    r"\b(?:"
    r"std\s*::\s*(?:thread|jthread)\b\s*(?:\w+\s*)?[({]"
    r"|std\s*::\s*async\s*\("
    r"|sweep_cell\s*\("
    r"|sweep_mix_cell\s*\("
    r"|sweep_source_cell\s*\("
    r"|SweepCell\s*\{"
    r")")


@dataclass
class Finding:
    path: str
    line: int
    rule: str
    detail: str

    def __str__(self) -> str:
        return (f"{self.path}:{self.line}: error: [{self.rule}] "
                f"{self.detail}")


# ---------------------------------------------------------------------------
# Source preprocessing (same contract as check_async_captures.py: blank
# out comments and literals, preserve line structure).
# ---------------------------------------------------------------------------

def strip_comments_and_strings(text: str) -> str:
    out = []
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        if c == "/" and i + 1 < n and text[i + 1] == "/":
            j = text.find("\n", i)
            j = n if j < 0 else j
            out.append(" " * (j - i))
            i = j
        elif c == "/" and i + 1 < n and text[i + 1] == "*":
            j = text.find("*/", i + 2)
            j = n if j < 0 else j + 2
            out.append("".join(ch if ch == "\n" else " "
                               for ch in text[i:j]))
            i = j
        elif c in "\"'":
            quote = c
            j = i + 1
            while j < n:
                if text[j] == "\\":
                    j += 2
                    continue
                if text[j] == quote:
                    j += 1
                    break
                j += 1
            out.append(quote + " " * (j - i - 2) + quote if j - i >= 2
                       else text[i:j])
            i = j
        else:
            out.append(c)
            i += 1
    return "".join(out)


def line_of(text: str, pos: int) -> int:
    return text.count("\n", 0, pos) + 1


# ---------------------------------------------------------------------------
# Registry: which class names are confined?
# ---------------------------------------------------------------------------

CLASS_DECL_RE = re.compile(r"\b(?:class|struct)\s+(\w+)\b[^;{]*\{")


def confined_types_in(text: str) -> set[str]:
    """Names of classes whose body contains the confinement marker.

    Associates each marker with the closest preceding class/struct
    declaration — exact for this codebase's style, where the marker is
    the first declaration in the class body.
    """
    decls = [(m.start(), m.group(1)) for m in CLASS_DECL_RE.finditer(text)]
    names = set()
    for m in re.finditer(r"\b%s\s*;" % MARKER, text):
        owner = None
        for pos, name in decls:
            if pos < m.start():
                owner = name
            else:
                break
        if owner:
            names.add(owner)
    return names


def build_registry(extra_paths: list[str]) -> set[str]:
    names: set[str] = set()
    roots = [os.path.join(REPO_ROOT, d) for d in REGISTRY_DIRS]
    for path in iter_sources(roots) + extra_paths:
        try:
            with open(path, encoding="utf-8", errors="replace") as f:
                raw = f.read()
        except OSError:
            continue
        if MARKER in raw:
            names |= confined_types_in(strip_comments_and_strings(raw))
    return names


# ---------------------------------------------------------------------------
# Rule 1: static storage duration
# ---------------------------------------------------------------------------

def names_group(names: set[str]) -> str:
    return "(?:" + "|".join(sorted(re.escape(n) for n in names)) + ")"


def check_static_storage(path, text, names) -> list[Finding]:
    findings = []
    grp = names_group(names)
    # `static Type  name ...` where the declarator is a variable (no `(`
    # after the identifier, so static member *functions* returning a
    # confined type stay legal). constexpr would not compile for these
    # types, but exclude it anyway for symmetry with the style rules.
    static_re = re.compile(
        r"\bstatic\s+(?!constexpr\b|const\b)"
        r"(?:[\w:]+\s+)*"                    # cv/attr words before the type
        + r"(?:[\w:]*::)?(%s)\b\s*" % grp    # the confined type
        + r"[&*]*\s*(\w+)\s*[;={[]")
    for m in static_re.finditer(text):
        findings.append(Finding(
            path, line_of(text, m.start()), "confined-global",
            f"'{m.group(2)}' gives thread-confined type '{m.group(1)}' "
            f"static storage duration; every thread in the process shares "
            f"a static — make it instance-owned"))
    # Namespace-scope globals: a declaration starting at column 0
    # (optionally `inline`/`extern`). Class members and locals are
    # indented in this codebase (clang-format, 2 spaces).
    global_re = re.compile(
        r"^(?:inline\s+|extern\s+)*"
        + r"(?:[\w:]*::)?(%s)\b\s*" % grp
        + r"[&*]*\s*(\w+)\s*[;={[]", re.M)
    for m in global_re.finditer(text):
        if text[:m.start()].endswith(("static ", "const ")):
            continue  # handled above / immutable
        findings.append(Finding(
            path, line_of(text, m.start()), "confined-global",
            f"global '{m.group(2)}' of thread-confined type "
            f"'{m.group(1)}'; confined instances must be owned by one "
            f"thread, not by the process"))
    return findings


# ---------------------------------------------------------------------------
# Rule 2: shared ownership
# ---------------------------------------------------------------------------

def check_shared_ownership(path, text, names) -> list[Finding]:
    findings = []
    grp = names_group(names)
    shared_re = re.compile(
        r"\b(shared_ptr|make_shared)\s*<\s*(?:[\w:]*::)?(%s)\b" % grp)
    for m in shared_re.finditer(text):
        findings.append(Finding(
            path, line_of(text, m.start()), "confined-shared-ptr",
            f"{m.group(1)}<{m.group(2)}>: shared ownership of a "
            f"thread-confined type; use unique_ptr (or pass by move) so "
            f"the owning thread stays unambiguous"))
    return findings


# ---------------------------------------------------------------------------
# Rule 3: thread-boundary captures
# ---------------------------------------------------------------------------

def split_top_level(s: str) -> list[str]:
    parts, depth, start = [], 0, 0
    for i, c in enumerate(s):
        if c in "<({[":
            depth += 1
        elif c in ">)}]":
            depth = max(0, depth - 1)
        elif c == "," and depth == 0:
            parts.append(s[start:i])
            start = i + 1
    parts.append(s[start:])
    return [p.strip() for p in parts if p.strip()]


def find_capture_list(text: str, open_bracket: int):
    depth, i = 0, open_bracket
    while i < len(text):
        if text[i] == "[":
            depth += 1
        elif text[i] == "]":
            depth -= 1
            if depth == 0:
                return text[open_bracket + 1:i], i
        i += 1
    return None


def declared_confined(text: str, before: int, var: str, grp: str) -> str | None:
    """Type name if `var` is declared with a confined type before `before`.

    Matches both direct declarations (`Bed bed`, `Bed& bed`) and unique
    ownership handles (`std::unique_ptr<Bed> bed`): a by-reference capture
    of the handle leaks the confined instance across the thread boundary
    just as surely as a reference to the object itself.
    """
    v = re.escape(var)
    decl_res = (
        re.compile(r"\b(?:[\w:]*::)?(%s)\b\s*(?:<[^;\n]*>)?\s*[&*]*\s+%s\b"
                   % (grp, v)),
        re.compile(r"\bunique_ptr\s*<\s*(?:[\w:]*::)?(%s)\s*>\s*[&*]*\s*%s\b"
                   % (grp, v)),
    )
    best = None
    for decl_re in decl_res:
        for m in decl_re.finditer(text, 0, before):
            best = m.group(1)
    return best


def check_thread_captures(path, text, names) -> list[Finding]:
    findings = []
    grp = names_group(names)
    for bm in BOUNDARY_RE.finditer(text):
        # The first lambda at this call site (scan a bounded window; the
        # idiom puts the callable within the call's argument list).
        window_end = min(len(text), bm.end() + 400)
        lb = text.find("[", bm.end(), window_end)
        if lb < 0:
            continue
        cap = find_capture_list(text, lb)
        if cap is None:
            continue
        site = bm.group(0).split("(")[0].split("{")[0].strip()
        lineno = line_of(text, lb)
        for entry in split_top_level(cap[0]):
            if entry in ("&", "="):
                findings.append(Finding(
                    path, lineno, "confined-capture",
                    f"default capture [{entry}] in a lambda passed to "
                    f"'{site}'; thread-boundary callables must capture "
                    f"explicitly so confinement transfers are visible"))
            elif entry == "this":
                findings.append(Finding(
                    path, lineno, "confined-capture",
                    f"'this' captured into a lambda passed to '{site}'; "
                    f"pass the shared state explicitly instead of leaking "
                    f"the enclosing object across the thread boundary"))
            elif entry.startswith("&"):
                var = entry[1:].strip()
                tname = declared_confined(text, lb, var, grp)
                if tname:
                    findings.append(Finding(
                        path, lineno, "confined-capture",
                        f"'&{var}' captures thread-confined type "
                        f"'{tname}' by reference into a lambda passed to "
                        f"'{site}'; construct the instance inside the "
                        f"callable instead"))
    return findings


# ---------------------------------------------------------------------------
# Driver
# ---------------------------------------------------------------------------

def iter_sources(paths: list[str]) -> list[str]:
    out = []
    for p in paths:
        if os.path.isfile(p):
            out.append(p)
            continue
        for dirpath, dirnames, filenames in os.walk(p):
            dirnames[:] = [d for d in dirnames if d != "lint_fixtures"]
            for fn in sorted(filenames):
                if fn.endswith(CXX_EXTS):
                    out.append(os.path.join(dirpath, fn))
    return out


def check_file(path: str, registry: set[str]) -> list[Finding]:
    try:
        with open(path, encoding="utf-8", errors="replace") as f:
            raw = f.read()
    except OSError as e:
        print(f"check_thread_confinement: cannot read {path}: {e}",
              file=sys.stderr)
        return []
    text = strip_comments_and_strings(raw)
    names = registry | confined_types_in(text)
    if not names:
        return []
    findings = []
    findings += check_static_storage(path, text, names)
    findings += check_shared_ownership(path, text, names)
    findings += check_thread_captures(path, text, names)
    return findings


def run(paths: list[str]) -> list[Finding]:
    registry = build_registry([p for p in paths if os.path.isfile(p)])
    if not registry:
        print("check_thread_confinement: no KVSIM_THREAD_CONFINED markers "
              "found under src/ — the gate would be vacuous", file=sys.stderr)
        sys.exit(2)
    findings = []
    for path in iter_sources(paths):
        findings.extend(check_file(path, registry))
    return findings


def self_test() -> int:
    fixtures = os.path.join(REPO_ROOT, FIXTURE_DIR)
    bad_dir = os.path.join(fixtures, "bad")
    good_dir = os.path.join(fixtures, "good")
    if not (os.path.isdir(bad_dir) and os.path.isdir(good_dir)):
        print(f"check_thread_confinement: missing fixtures under {fixtures}",
              file=sys.stderr)
        return 2
    failures = 0
    for fn in sorted(os.listdir(bad_dir)):
        if not fn.endswith(CXX_EXTS):
            continue
        path = os.path.join(bad_dir, fn)
        if not run([path]):
            print(f"SELF-TEST FAIL: expected a finding in {path}")
            failures += 1
        else:
            print(f"self-test ok (flagged): {fn}")
    for fn in sorted(os.listdir(good_dir)):
        if not fn.endswith(CXX_EXTS):
            continue
        path = os.path.join(good_dir, fn)
        got = run([path])
        if got:
            for f in got:
                print(f"SELF-TEST FAIL (false positive): {f}")
            failures += 1
        else:
            print(f"self-test ok (clean):   {fn}")
    if failures:
        print(f"check_thread_confinement self-test: {failures} failure(s)")
        return 1
    print("check_thread_confinement self-test: all fixtures behaved")
    return 0


def main(argv: list[str]) -> int:
    args = [a for a in argv[1:] if not a.startswith("--")]
    flags = {a for a in argv[1:] if a.startswith("--")}
    unknown = flags - {"--self-test", "--help"}
    if unknown or "--help" in flags:
        print(__doc__)
        return 0 if "--help" in flags else 2
    if "--self-test" in flags:
        return self_test()
    paths = args or [os.path.join(REPO_ROOT, d) for d in DEFAULT_DIRS]
    findings = run(paths)
    for f in findings:
        print(f)
    if findings:
        print(f"check_thread_confinement: {len(findings)} confinement "
              f"violation(s) found", file=sys.stderr)
        return 1
    print("check_thread_confinement: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
