#!/usr/bin/env bash
# Static-analysis gate for the simulator. Runs, in order:
#
#   1. clang-tidy with the repo's curated .clang-tidy check set (skipped
#      with a notice when clang-tidy is not installed — the container
#      image ships only the LLVM backend tools);
#   2. scripts/check_async_captures.py, the repo-specific detector for
#      self-keeping async closure chains (pure Python, always runs),
#      including its fixture self-test;
#   3. scripts/check_thread_confinement.py, the KVSIM_THREAD_CONFINED
#      gate (confined types must not gain static storage, shared
#      ownership, or cross a thread boundary by reference), including
#      its fixture self-test;
#   4. with --format: clang-format --dry-run over the tree (skipped with
#      a notice when clang-format is missing).
#
# Usage: scripts/lint.sh [--format] [--tidy-only] [build-dir]
# Exit status: nonzero if any available tool reports a violation.
set -uo pipefail

cd "$(dirname "$0")/.."

CHECK_FORMAT=0
TIDY_ONLY=0
BUILD_DIR=build
for arg in "$@"; do
  case "$arg" in
    --format) CHECK_FORMAT=1 ;;
    --tidy-only) TIDY_ONLY=1 ;;
    -h|--help) sed -n '2,15p' "$0"; exit 0 ;;
    *) BUILD_DIR="$arg" ;;
  esac
done

FAILED=0
note() { printf '\n== %s ==\n' "$*"; }

sources() {
  find src bench tests examples -name lint_fixtures -prune -o \
    \( -name '*.cc' -o -name '*.cpp' -o -name '*.h' \) -print | sort
}

# --- 1. clang-tidy -----------------------------------------------------------
note "clang-tidy"
if command -v clang-tidy >/dev/null 2>&1; then
  # clang-tidy needs a compilation database; generate one on demand.
  if [ ! -f "$BUILD_DIR/compile_commands.json" ]; then
    cmake -B "$BUILD_DIR" -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null
  fi
  if ! sources | grep -v '\.h$' | \
      xargs clang-tidy -p "$BUILD_DIR" --quiet; then
    FAILED=1
  fi
else
  echo "clang-tidy not installed; skipping (config: .clang-tidy)"
fi

if [ "$TIDY_ONLY" = 1 ]; then exit "$FAILED"; fi

# --- 2. async-capture checker ------------------------------------------------
note "check_async_captures"
if ! python3 scripts/check_async_captures.py --self-test; then
  FAILED=1
fi
if ! python3 scripts/check_async_captures.py; then
  FAILED=1
fi

# --- 3. thread-confinement checker -------------------------------------------
note "check_thread_confinement"
if ! python3 scripts/check_thread_confinement.py --self-test; then
  FAILED=1
fi
if ! python3 scripts/check_thread_confinement.py src bench tests; then
  FAILED=1
fi

# --- 4. formatting (opt-in) --------------------------------------------------
if [ "$CHECK_FORMAT" = 1 ]; then
  note "clang-format"
  if command -v clang-format >/dev/null 2>&1; then
    if ! sources | xargs clang-format --dry-run -Werror; then
      FAILED=1
    fi
  else
    echo "clang-format not installed; skipping (config: .clang-format)"
  fi
fi

if [ "$FAILED" = 0 ]; then
  echo
  echo "lint: clean"
else
  echo
  echo "lint: violations found" >&2
fi
exit "$FAILED"
