#!/usr/bin/env bash
# The full pre-merge gate, in the order a failure is cheapest to find:
#
#   1. configure + build (default flags) and run the tier-1 test suite;
#   2. static analysis: scripts/lint.sh (clang-tidy when installed, the
#      async-capture checker always) plus the format check;
#   3. the same test suite compiled with -DKVSIM_AUDIT=ON, so every
#      workload the tests run is cross-checked against the shadow
#      invariant auditors (see docs/API.md "Developing");
#   4. the seeded fault smoke: the fault-injection test slice re-run on
#      the audit build (deterministic plans, non-zero recovery counters,
#      zero invariant violations);
#   5. the crash-sweep smoke: power-loss cuts + mount-time recovery on
#      all three beds, differential-checked on the audit build;
#   5b. the trace smoke: record->replay fidelity on the audit build
#      (capturing a run to `.kvt` and replaying it must reproduce the
#      BenchReport byte-identically on all three beds), plus the codec's
#      corruption-rejection slice;
#   5c. the multi-tenant smoke: WRR fairness and noisy-neighbor
#      isolation scenarios (bench_multitenant --smoke) on the audit
#      build, shape-checked against the acceptance bounds;
#   5d. the overload smoke: open-loop offered-load sweeps with and
#      without SLO admission control (bench_overload --smoke) on the
#      audit build, shape-checked against the graceful-degradation
#      contract (protected p99 holds the target at 2x saturating load,
#      bounded shed, unprotected p99 blows past 5x);
#   6. the sweep smoke: the fig-matrix driver fanned across an
#      8-thread SweepRunner pool, shape-checking that the merged JSON is
#      byte-identical to the single-thread pass;
#   7. the simulation-core perf smoke (scripts/bench.sh --smoke), failing
#      on >20% events/sec regression vs the committed BENCH_sim.json (and
#      on sweep-scaling regression vs its committed baseline);
#   8. the suite under ASan/UBSan via scripts/sanitize.sh;
#   9. the sweep tests + driver under TSan via scripts/sanitize.sh --tsan.
#
# Usage: scripts/ci.sh [--fast]
#   --fast  skip the sanitizer passes (slowest stages) for quick local runs.
set -euo pipefail

cd "$(dirname "$0")/.."

FAST=0
for arg in "$@"; do
  case "$arg" in
    --fast) FAST=1 ;;
    -h|--help) sed -n '2,15p' "$0"; exit 0 ;;
    *) echo "unknown argument: $arg" >&2; exit 2 ;;
  esac
done

stage() { printf '\n=== ci: %s ===\n' "$*"; }

# Tests are independent processes; run them wider than the core count
# (floor 4) so the many tiny binaries don't serialize on small runners.
JOBS=$(nproc)
[ "$JOBS" -lt 4 ] && JOBS=4

stage "build + tier-1 tests"
cmake -B build -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON
cmake --build build -j "$(nproc)"
ctest --test-dir build -j "$JOBS" --output-on-failure

stage "lint"
scripts/lint.sh --format build

stage "KVSIM_AUDIT=ON tests"
cmake -B build-audit -S . -DKVSIM_AUDIT=ON
cmake --build build-audit -j "$(nproc)"
ctest --test-dir build-audit -j "$JOBS" --output-on-failure

stage "seeded fault smoke (audit build)"
# End-to-end fault drill under the shadow auditors: a fixed seeded plan
# must produce deterministic reports, non-zero recovery counters (grown
# bad blocks, remaps, re-programs, host retries), and zero invariant
# violations. The same binary runs in stage 3; re-running the fault
# slice here keeps the gate visible when the suite grows.
./build-audit/tests/fault_test \
  --gtest_filter='FaultDeterminism.*:FaultRecovery.*:FaultFree.*'

stage "crash-sweep smoke (audit build)"
# Power-loss drill under the shadow auditors: cut the queue at several
# depths on all three beds, mount, and differential-check the recovered
# state against the per-key write oracle (no corruption, drained data
# survives exactly, deterministic recovery counters).
./build-audit/tests/crash_recovery_test --gtest_filter='CrashSweep*:*/CrashSweep.*:CrashRecovery.*'

stage "trace smoke (audit build)"
# The trace subsystem's fidelity gate under the shadow auditors: a run
# captured at dispatch and replayed through TraceOpSource must produce
# the exact same serialized report on every bed, and the `.kvt` codec
# must reject truncated/corrupt streams rather than decode garbage.
./build-audit/tests/trace_replay_test --gtest_filter='TraceFidelity.*'
./build-audit/tests/trace_codec_test --gtest_filter='KvtCodec.*'

stage "multi-tenant smoke (audit build)"
# The multi-queue front-end's acceptance gates under the shadow
# auditors: 16-tenant WRR throughput proportional to weights within 5%,
# and the noisy-neighbor victim's p99 bounded on an isolated weighted
# queue vs inflated on a shared one, on all three beds.
cmake --build build-audit -j "$(nproc)" --target bench_multitenant
./build-audit/bench/bench_multitenant --smoke

stage "overload smoke (audit build)"
# The overload subsystem's acceptance gates under the shadow auditors:
# on every bed, at 2x the calibrated saturation load, the SLO-protected
# open-loop run must hold its p99 target with a bounded shed fraction
# while the unprotected run's p99 blows past 5x the target.
cmake --build build-audit -j "$(nproc)" --target bench_overload
./build-audit/bench/bench_overload --smoke

stage "sweep smoke"
# The parallel sweep engine's determinism gate: the fig-matrix driver
# runs its cells at 1 thread and at 8 and fails unless the merged
# BenchReport JSON is byte-identical (scheduling must be invisible).
cmake --build build -j "$(nproc)" --target bench_fig_matrix
./build/bench/bench_fig_matrix --smoke --threads=8

stage "bench smoke"
scripts/bench.sh --smoke

if [ "$FAST" = 0 ]; then
  stage "sanitizers (ASan/UBSan)"
  scripts/sanitize.sh
  stage "sanitizers (TSan sweep suite)"
  scripts/sanitize.sh --tsan
else
  stage "sanitizers skipped (--fast)"
fi

stage "all gates passed"
