#!/usr/bin/env bash
# Build and run the tier-1 test suite under sanitizers.
#
# Default: AddressSanitizer + UndefinedBehaviorSanitizer (the
# KVSIM_SANITIZE CMake option) over the whole suite.
#
# --tsan: ThreadSanitizer (the KVSIM_TSAN CMake option) over the
# concurrency surface — the SweepRunner tests plus the fig-matrix sweep
# driver in smoke mode. The simulator core is single-threaded by
# contract (see docs/API.md "Concurrency model"), so TSan earns its keep
# exactly where threads exist: the sweep pool and its merge path.
#
# Usage: scripts/sanitize.sh [--tsan] [build-dir]
set -euo pipefail

cd "$(dirname "$0")/.."

MODE=asan
BUILD_DIR=
for arg in "$@"; do
  case "$arg" in
    --tsan) MODE=tsan ;;
    -h|--help) sed -n '2,14p' "$0"; exit 0 ;;
    *) BUILD_DIR="$arg" ;;
  esac
done

if [ "$MODE" = tsan ]; then
  BUILD_DIR="${BUILD_DIR:-build-tsan}"
  cmake -B "$BUILD_DIR" -S . \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DKVSIM_TSAN=ON
  cmake --build "$BUILD_DIR" -j "$(nproc)" \
    --target sweep_test --target bench_fig_matrix

  # halt_on_error: any race report fails the gate immediately.
  export TSAN_OPTIONS="halt_on_error=1:second_deadlock_stack=1"

  "$BUILD_DIR/tests/sweep_test"
  "$BUILD_DIR/bench/bench_fig_matrix" --smoke --threads=4
  echo "tsan sweep suite passed"
  exit 0
fi

BUILD_DIR="${BUILD_DIR:-build-sanitize}"
cmake -B "$BUILD_DIR" -S . \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DKVSIM_SANITIZE=ON
cmake --build "$BUILD_DIR" -j "$(nproc)"

# halt_on_error: any sanitizer report fails the suite.
export ASAN_OPTIONS="halt_on_error=1:detect_leaks=1"
export UBSAN_OPTIONS="halt_on_error=1:print_stacktrace=1"

ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$(nproc)"
echo "sanitized test suite passed"
