#!/usr/bin/env bash
# Build and run the tier-1 test suite under AddressSanitizer +
# UndefinedBehaviorSanitizer (the KVSIM_SANITIZE CMake option).
#
# Usage: scripts/sanitize.sh [build-dir]
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build-sanitize}"

cmake -B "$BUILD_DIR" -S . \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DKVSIM_SANITIZE=ON
cmake --build "$BUILD_DIR" -j "$(nproc)"

# halt_on_error: any sanitizer report fails the suite.
export ASAN_OPTIONS="halt_on_error=1:detect_leaks=1"
export UBSAN_OPTIONS="halt_on_error=1:print_stacktrace=1"

ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$(nproc)"
echo "sanitized test suite passed"
